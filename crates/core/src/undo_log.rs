//! Per-thread circular persistent undo logs.
//!
//! Each thread owns a circular log in persistent memory. During the Log
//! phase the executing hardware transaction appends one `<addr, oldValue>`
//! entry per persistent write plus a trailing `LOGGED` marker; after the
//! hardware transaction commits, the entries are flushed (CLWB without
//! drain — the next hardware transaction's fence semantics complete the
//! persist). The Redo or Validate phase later overwrites the marker with
//! `COMMITTED` and the commit timestamp (the paper's merged
//! LOGGED/COMMITTED optimization, Section 6).
//!
//! # Entry encoding (Section 5.2 + Section 6)
//!
//! Every entry is two 64-bit words. Persistence is only guaranteed at word
//! granularity, so recovery must detect entries whose two words did not
//! both persist. Following the paper, bits are stolen from the first word:
//!
//! ```text
//! data entry
//! meta word:  [63]=0 marker?  [62] wraparound parity   [61] old-value bit 0
//!             [60] present    [47..0] address word index
//! value word: [63..1] old-value bits 63..1             [0] wraparound parity
//!
//! marker entry
//! meta word:  [63]=1 marker?  [62] wraparound parity
//!             [60] present    [47..0] marker kind
//! value word: [63..1] timestamp (shifted left 1)       [0] wraparound parity
//! ```
//!
//! A data entry's old value needs all 64 bits, so its lowest bit lives in
//! the meta word and the value word's lowest bit carries the wraparound
//! parity. An entry is *fully persisted* iff its present bit is set and
//! both parity bits match the parity expected for its position in the log
//! (the lap counter's low bit).
//!
//! A marker's timestamp, by contrast, lives *entirely in the value word*
//! (shifted past the parity bit — timestamps are clock counts, far below
//! 2^63). This is deliberate, not cosmetic: the commit phases overwrite a
//! LOGGED marker with a COMMITTED one **in place**, and both versions
//! carry the same lap parity, so parity cannot detect a crash that
//! persists one word of the overwrite but not the other. With the
//! timestamp split across the words (as data entries do), such a mix would
//! decode as a valid marker carrying a *frankenstein* timestamp — bits of
//! the Log-phase timestamp spliced with a bit of the commit timestamp —
//! which can derail the recovery cut's rollback ordering. Keeping each
//! field within one word makes every word-granular persistence mix decode
//! to a legitimate `(kind, ts)` pair whose timestamp is one of the
//! sequence's real clock draws, either of which orders correctly.

use crafty_common::{PAddr, Timestamp, WORDS_PER_LINE};
use crafty_htm::{AbortCode, HtmRuntime, HwTxn};
use crafty_pmem::{MemorySpace, PersistentImage};

/// Bit 63 of the meta word: the entry is a LOGGED/COMMITTED marker.
const MARKER_BIT: u64 = 1 << 63;
/// Bit 62 of the meta word: wraparound parity.
const META_PARITY_BIT: u64 = 1 << 62;
/// Bit 61 of the meta word: bit 0 of the payload.
const STOLEN_PAYLOAD_BIT: u64 = 1 << 61;
/// Bit 60 of the meta word: the slot has been written at least once.
const PRESENT_BIT: u64 = 1 << 60;
/// Low 48 bits of the meta word: address word index or marker kind.
const ADDR_MASK: u64 = (1 << 48) - 1;
/// Bit 0 of the value word: wraparound parity.
const VALUE_PARITY_BIT: u64 = 1;

/// Whether a marker entry was written by the Log phase or overwritten at
/// commit time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MarkerKind {
    /// The sequence's undo entries are complete and persisted; its writes
    /// may or may not have been performed.
    Logged,
    /// The sequence's writes were committed by a Redo or Validate phase
    /// (or an SGL section) at the recorded timestamp.
    Committed,
}

impl MarkerKind {
    fn code(self) -> u64 {
        match self {
            MarkerKind::Logged => 1,
            MarkerKind::Committed => 2,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(MarkerKind::Logged),
            2 => Some(MarkerKind::Committed),
            _ => None,
        }
    }
}

/// A decoded, fully persisted log entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Entry {
    /// `<addr, oldValue>`: `addr` held `old_value` before the logged
    /// transaction's write.
    Data {
        /// The written-to persistent address.
        addr: PAddr,
        /// The value the address held before the write.
        old_value: u64,
    },
    /// A LOGGED or COMMITTED marker concluding a sequence.
    Marker {
        /// Whether the sequence was merely logged or also committed.
        kind: MarkerKind,
        /// The sequence timestamp (Log time, overwritten with commit time).
        ts: Timestamp,
    },
}

/// The state of one log slot as seen by the recovery observer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// The slot has never been written (or only partially persisted its
    /// present bit); it carries no information.
    Absent,
    /// The slot was written but its two words carry mismatched parity —
    /// the entry did not fully persist.
    Torn,
    /// A fully persisted entry with the given lap parity.
    Valid {
        /// The wraparound parity both words carry.
        parity: u64,
        /// The decoded entry.
        entry: Entry,
    },
}

/// Encodes an entry into its two log words (see the module docs for why
/// markers keep their whole timestamp in the value word).
fn encode(entry: Entry, parity: u64) -> (u64, u64) {
    let parity = parity & 1;
    let (meta_fields, value_payload) = match entry {
        Entry::Data { addr, old_value } => {
            debug_assert!(addr.word() <= ADDR_MASK, "address exceeds 48-bit log field");
            let stolen = if old_value & 1 == 1 {
                STOLEN_PAYLOAD_BIT
            } else {
                0
            };
            (stolen | (addr.word() & ADDR_MASK), old_value & !1)
        }
        Entry::Marker { kind, ts } => {
            debug_assert!(
                ts.raw() < 1 << 63,
                "timestamp exceeds the 63-bit marker field"
            );
            (MARKER_BIT | kind.code(), ts.raw() << 1)
        }
    };
    let mut meta = PRESENT_BIT | meta_fields;
    if parity == 1 {
        meta |= META_PARITY_BIT;
    }
    let mut value = value_payload & !VALUE_PARITY_BIT;
    if parity == 1 {
        value |= VALUE_PARITY_BIT;
    }
    (meta, value)
}

/// Decodes two log words into a [`SlotState`].
pub fn decode(meta: u64, value: u64) -> SlotState {
    if meta & PRESENT_BIT == 0 {
        return SlotState::Absent;
    }
    let meta_parity = u64::from(meta & META_PARITY_BIT != 0);
    let value_parity = value & VALUE_PARITY_BIT;
    if meta_parity != value_parity {
        return SlotState::Torn;
    }
    let entry = if meta & MARKER_BIT != 0 {
        match MarkerKind::from_code(meta & ADDR_MASK) {
            Some(kind) => Entry::Marker {
                kind,
                ts: Timestamp::from_raw((value & !VALUE_PARITY_BIT) >> 1),
            },
            None => return SlotState::Torn,
        }
    } else {
        let old_value = (value & !VALUE_PARITY_BIT) | u64::from(meta & STOLEN_PAYLOAD_BIT != 0);
        Entry::Data {
            addr: PAddr::new(meta & ADDR_MASK),
            old_value,
        }
    };
    SlotState::Valid {
        parity: meta_parity,
        entry,
    }
}

/// Where in memory a thread's circular log lives. This is all the recovery
/// observer needs (it reads it from the persistent log directory).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogGeometry {
    /// First word of the log region (2 × `capacity` words long).
    pub start: PAddr,
    /// Capacity in entries.
    pub capacity: u64,
}

impl LogGeometry {
    /// Number of persistent words the log occupies.
    pub fn words(&self) -> u64 {
        self.capacity * 2
    }

    /// The address of the meta word of the slot used by absolute entry
    /// index `abs`.
    pub fn slot_addr(&self, abs: u64) -> PAddr {
        self.start.add((abs % self.capacity) * 2)
    }

    /// The wraparound parity of absolute entry index `abs`.
    pub fn parity(&self, abs: u64) -> u64 {
        (abs / self.capacity) & 1
    }

    /// Reads slot `slot` (0-based position within the region, *not* an
    /// absolute index) from a crashed image.
    pub fn read_slot(&self, image: &PersistentImage, slot: u64) -> SlotState {
        let addr = self.start.add(slot * 2);
        decode(image.read(addr), image.read(addr.add(1)))
    }
}

/// Result of appending a sequence during the Log phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppendInfo {
    /// Absolute index of the first data entry (equals the marker index for
    /// an empty sequence).
    pub first_abs: u64,
    /// Absolute index of the trailing marker entry.
    pub marker_abs: u64,
    /// Number of data entries (excluding the marker).
    pub data_entries: u64,
}

/// A per-thread handle to its circular persistent undo log.
///
/// The log head (an absolute, monotonically increasing entry count) lives
/// in *volatile simulated memory* and is read and written inside hardware
/// transactions: an aborted Log phase therefore rolls the head back
/// automatically, and another thread forcing a refresh entry into this log
/// (Section 5.2) synchronizes with the owner through ordinary HTM conflict
/// detection.
#[derive(Clone, Copy, Debug)]
pub struct UndoLog {
    geometry: LogGeometry,
    /// Volatile simulated word holding the absolute entry count.
    head_addr: PAddr,
}

impl UndoLog {
    /// Creates a handle over an already-reserved log region and head word.
    pub fn new(geometry: LogGeometry, head_addr: PAddr) -> Self {
        UndoLog {
            geometry,
            head_addr,
        }
    }

    /// The log's placement and capacity.
    pub fn geometry(&self) -> LogGeometry {
        self.geometry
    }

    /// The volatile word holding the absolute entry count.
    pub fn head_addr(&self) -> PAddr {
        self.head_addr
    }

    /// Reads the current absolute head (non-transactionally).
    pub fn head(&self, mem: &MemorySpace) -> u64 {
        mem.read(self.head_addr)
    }

    /// Appends `entries` (in order) followed by a `LOGGED` marker carrying
    /// `ts`, all inside the given hardware transaction. Nothing becomes
    /// visible or persistent unless the transaction commits.
    ///
    /// # Errors
    ///
    /// Propagates any hardware-transaction abort.
    pub fn append_sequence(
        &self,
        txn: &mut HwTxn<'_>,
        entries: &[(PAddr, u64)],
        ts: Timestamp,
    ) -> Result<AppendInfo, AbortCode> {
        let head = txn.read(self.head_addr)?;
        let mut abs = head;
        for &(addr, old_value) in entries {
            self.write_entry_txn(txn, abs, Entry::Data { addr, old_value })?;
            abs += 1;
        }
        let marker_abs = abs;
        self.write_entry_txn(
            txn,
            marker_abs,
            Entry::Marker {
                kind: MarkerKind::Logged,
                ts,
            },
        )?;
        txn.write(self.head_addr, marker_abs + 1)?;
        Ok(AppendInfo {
            first_abs: head,
            marker_abs,
            data_entries: entries.len() as u64,
        })
    }

    /// Overwrites the marker at `marker_abs` with a `COMMITTED` entry
    /// carrying `ts`, inside the given hardware transaction.
    ///
    /// # Errors
    ///
    /// Propagates any hardware-transaction abort.
    pub fn commit_marker_txn(
        &self,
        txn: &mut HwTxn<'_>,
        marker_abs: u64,
        ts: Timestamp,
    ) -> Result<(), AbortCode> {
        self.write_entry_txn(
            txn,
            marker_abs,
            Entry::Marker {
                kind: MarkerKind::Committed,
                ts,
            },
        )
    }

    /// Non-transactional variants used by the SGL (thread-unsafe) path,
    /// which runs while holding the global lock: writes go through the HTM
    /// runtime's non-transactional store so that doomed concurrent
    /// transactions still detect them.
    pub fn append_sequence_nontx(
        &self,
        htm: &HtmRuntime,
        entries: &[(PAddr, u64)],
        kind: MarkerKind,
        ts: Timestamp,
    ) -> AppendInfo {
        let head = htm.nontx_read(self.head_addr);
        let mut abs = head;
        for &(addr, old_value) in entries {
            self.write_entry_nontx(htm, abs, Entry::Data { addr, old_value });
            abs += 1;
        }
        let marker_abs = abs;
        self.write_entry_nontx(htm, marker_abs, Entry::Marker { kind, ts });
        htm.nontx_write(self.head_addr, marker_abs + 1);
        AppendInfo {
            first_abs: head,
            marker_abs,
            data_entries: entries.len() as u64,
        }
    }

    /// Overwrites a marker non-transactionally (SGL path).
    pub fn commit_marker_nontx(&self, htm: &HtmRuntime, marker_abs: u64, ts: Timestamp) {
        self.write_entry_nontx(
            htm,
            marker_abs,
            Entry::Marker {
                kind: MarkerKind::Committed,
                ts,
            },
        );
    }

    /// Issues CLWBs (no drain) for every line holding entries
    /// `[first_abs, last_abs]`, one queue interaction per touched line.
    /// Returns the number of lines flushed.
    ///
    /// Entry slots are laid out contiguously, so the touched words form at
    /// most two contiguous ranges (the tail of the region and, after a
    /// wraparound, its start). The flush loop walks *lines*, not slot
    /// words: a line holding four freshly appended entries is enqueued
    /// once, instead of paying eight per-word queue interactions that the
    /// queue-side dedup would then have to absorb. The entries' dirty
    /// words are already recorded in the lines' persistence masks (every
    /// transactional or `nontx` store marks its word), so the eventual
    /// drain persists exactly the appended slots.
    pub fn flush_entries(
        &self,
        mem: &MemorySpace,
        tid: usize,
        first_abs: u64,
        last_abs: u64,
    ) -> u64 {
        debug_assert!(last_abs >= first_abs);
        debug_assert!(last_abs - first_abs < self.geometry.capacity);
        let capacity = self.geometry.capacity;
        let entries = last_abs - first_abs + 1;
        let first_slot = first_abs % capacity;
        let before_wrap = entries.min(capacity - first_slot);
        let mut lines = 0u64;
        for (slot, count) in [(first_slot, before_wrap), (0, entries - before_wrap)] {
            if count == 0 {
                continue;
            }
            let first_word = self.geometry.start.word() + slot * 2;
            let last_word = first_word + count * 2 - 1;
            let mut line = PAddr::new(first_word).line().index();
            let last_line = PAddr::new(last_word).line().index();
            while line <= last_line {
                mem.clwb(tid, crafty_common::LineId::new(line).first_word());
                lines += 1;
                line += 1;
            }
        }
        lines
    }

    /// Issues a CLWB for the marker entry at `marker_abs`.
    pub fn flush_marker(&self, mem: &MemorySpace, tid: usize, marker_abs: u64) {
        mem.clwb(tid, self.geometry.slot_addr(marker_abs));
    }

    /// True if appending `extra` more entries would cross into the half of
    /// the circular log that the thread is about to start overwriting
    /// (the trigger point for the Section 5.2 lag checks).
    pub fn crosses_half(&self, head: u64, extra: u64) -> bool {
        let half = self.geometry.capacity / 2;
        if half == 0 {
            return false;
        }
        (head / half) != ((head + extra) / half)
    }

    fn write_entry_txn(
        &self,
        txn: &mut HwTxn<'_>,
        abs: u64,
        entry: Entry,
    ) -> Result<(), AbortCode> {
        let (meta, value) = encode(entry, self.geometry.parity(abs));
        let addr = self.geometry.slot_addr(abs);
        txn.write(addr, meta)?;
        txn.write(addr.add(1), value)?;
        Ok(())
    }

    fn write_entry_nontx(&self, htm: &HtmRuntime, abs: u64, entry: Entry) {
        let (meta, value) = encode(entry, self.geometry.parity(abs));
        let addr = self.geometry.slot_addr(abs);
        htm.nontx_write(addr, meta);
        htm.nontx_write(addr.add(1), value);
    }
}

/// The persistent log directory: the root object recovery starts from.
///
/// Layout (one word each): magic, thread count, per-thread log capacity,
/// then one log start address per thread. Written and persisted once when
/// the engine is constructed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogDirectory {
    /// One geometry per worker thread, indexed by thread id.
    pub logs: Vec<LogGeometry>,
}

const DIRECTORY_MAGIC: u64 = 0xC4AF_2020_0D0A_7E57;

impl LogDirectory {
    /// Number of words a directory for `threads` threads occupies.
    pub fn words_needed(threads: usize) -> u64 {
        3 + threads as u64
    }

    /// Writes and persists the directory at `at`.
    pub fn store(&self, mem: &MemorySpace, tid: usize, at: PAddr) {
        assert!(
            !self.logs.is_empty(),
            "directory must describe at least one log"
        );
        let capacity = self.logs[0].capacity;
        assert!(
            self.logs.iter().all(|g| g.capacity == capacity),
            "all per-thread logs must share a capacity"
        );
        mem.write(at, DIRECTORY_MAGIC);
        mem.write(at.add(1), self.logs.len() as u64);
        mem.write(at.add(2), capacity);
        for (i, g) in self.logs.iter().enumerate() {
            mem.write(at.add(3 + i as u64), g.start.word());
        }
        let words = Self::words_needed(self.logs.len());
        for w in 0..words.div_ceil(WORDS_PER_LINE) {
            mem.clwb(tid, at.add(w * WORDS_PER_LINE));
        }
        mem.drain(tid);
    }

    /// Reads a directory back from a crashed image. Returns `None` if the
    /// magic number does not match (no Crafty heap at `at`).
    pub fn load(image: &PersistentImage, at: PAddr) -> Option<LogDirectory> {
        if image.read(at) != DIRECTORY_MAGIC {
            return None;
        }
        let threads = image.read(at.add(1)) as usize;
        let capacity = image.read(at.add(2));
        let logs = (0..threads)
            .map(|i| LogGeometry {
                start: PAddr::new(image.read(at.add(3 + i as u64))),
                capacity,
            })
            .collect();
        Some(LogDirectory { logs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_common::BreakdownRecorder;
    use crafty_htm::HtmConfig;
    use crafty_pmem::PmemConfig;
    use std::sync::Arc;

    fn setup() -> (Arc<MemorySpace>, HtmRuntime, UndoLog) {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let htm = HtmRuntime::new(
            Arc::clone(&mem),
            HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        );
        let capacity = 16;
        let start = mem.reserve_persistent(capacity * 2);
        let head = mem.reserve_volatile(1);
        let log = UndoLog::new(LogGeometry { start, capacity }, head);
        (mem, htm, log)
    }

    #[test]
    fn encode_decode_round_trips_data_entries() {
        for parity in [0, 1] {
            for value in [0u64, 1, u64::MAX, 0x8000_0000_0000_0001] {
                let entry = Entry::Data {
                    addr: PAddr::new(0x1234),
                    old_value: value,
                };
                let (m, v) = encode(entry, parity);
                match decode(m, v) {
                    SlotState::Valid {
                        parity: p,
                        entry: e,
                    } => {
                        assert_eq!(p, parity);
                        assert_eq!(e, entry);
                    }
                    other => panic!("expected valid entry, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_markers() {
        for kind in [MarkerKind::Logged, MarkerKind::Committed] {
            let entry = Entry::Marker {
                kind,
                ts: Timestamp::from_raw(0xABCD_EF01_2345),
            };
            let (m, v) = encode(entry, 1);
            assert!(matches!(
                decode(m, v),
                SlotState::Valid { parity: 1, entry: e } if e == entry
            ));
        }
    }

    #[test]
    fn zero_words_decode_as_absent() {
        assert_eq!(decode(0, 0), SlotState::Absent);
    }

    #[test]
    fn torn_marker_overwrite_never_yields_a_frankenstein_timestamp() {
        // The commit phases overwrite a LOGGED marker with a COMMITTED one
        // in place; both versions carry the same lap parity, so a crash may
        // persist any combination of the two words undetected. Every such
        // combination must decode to a marker whose timestamp is one of the
        // two real clock draws — never a splice of their bits.
        let log_ts = Timestamp::from_raw(0x1234_5677);
        let commit_ts = Timestamp::from_raw(0x1234_5842);
        for parity in [0, 1] {
            let (m_logged, v_logged) = encode(
                Entry::Marker {
                    kind: MarkerKind::Logged,
                    ts: log_ts,
                },
                parity,
            );
            let (m_committed, v_committed) = encode(
                Entry::Marker {
                    kind: MarkerKind::Committed,
                    ts: commit_ts,
                },
                parity,
            );
            for (m, v) in [
                (m_logged, v_logged),
                (m_logged, v_committed),
                (m_committed, v_logged),
                (m_committed, v_committed),
            ] {
                match decode(m, v) {
                    SlotState::Valid {
                        entry: Entry::Marker { ts, .. },
                        ..
                    } => assert!(
                        ts == log_ts || ts == commit_ts,
                        "mixed marker words decoded to a spliced timestamp {ts:?}"
                    ),
                    other => panic!("mixed marker words must stay valid markers, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mismatched_parity_decodes_as_torn() {
        let (m, v) = encode(
            Entry::Data {
                addr: PAddr::new(5),
                old_value: 7,
            },
            1,
        );
        // Simulate the value word not having persisted: it still carries
        // the previous lap's parity (0).
        let stale_value = v & !1;
        assert_eq!(decode(m, stale_value), SlotState::Torn);
    }

    #[test]
    fn append_inside_transaction_is_invisible_until_commit() {
        let (mem, htm, log) = setup();
        let mut txn = htm.begin(0);
        let info = log
            .append_sequence(&mut txn, &[(PAddr::new(64), 9)], Timestamp::from_raw(3))
            .expect("append");
        assert_eq!(info.data_entries, 1);
        assert_eq!(log.head(&mem), 0, "head update must be buffered");
        txn.commit().expect("commit");
        assert_eq!(log.head(&mem), 2);
    }

    #[test]
    fn committed_and_flushed_entries_survive_a_crash() {
        let (mem, htm, log) = setup();
        let data = [(PAddr::new(64), 11u64), (PAddr::new(72), 22u64)];
        let mut txn = htm.begin(0);
        let info = log
            .append_sequence(&mut txn, &data, Timestamp::from_raw(5))
            .expect("append");
        txn.commit().expect("commit");
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        let image = mem.crash();
        let g = log.geometry();
        match g.read_slot(&image, 0) {
            SlotState::Valid {
                entry: Entry::Data { addr, old_value },
                ..
            } => {
                assert_eq!(addr, PAddr::new(64));
                assert_eq!(old_value, 11);
            }
            other => panic!("slot 0: {other:?}"),
        }
        match g.read_slot(&image, 2) {
            SlotState::Valid {
                entry: Entry::Marker { kind, ts },
                ..
            } => {
                assert_eq!(kind, MarkerKind::Logged);
                assert_eq!(ts.raw(), 5);
            }
            other => panic!("slot 2: {other:?}"),
        }
    }

    #[test]
    fn commit_marker_overwrites_logged_entry() {
        let (mem, htm, log) = setup();
        let mut txn = htm.begin(0);
        let info = log
            .append_sequence(&mut txn, &[(PAddr::new(64), 1)], Timestamp::from_raw(7))
            .expect("append");
        txn.commit().expect("commit");
        let mut txn2 = htm.begin(0);
        log.commit_marker_txn(&mut txn2, info.marker_abs, Timestamp::from_raw(9))
            .expect("commit marker");
        txn2.commit().expect("commit");
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        let image = mem.crash();
        match log.geometry().read_slot(&image, info.marker_abs) {
            SlotState::Valid {
                entry: Entry::Marker { kind, ts },
                ..
            } => {
                assert_eq!(kind, MarkerKind::Committed);
                assert_eq!(ts.raw(), 9);
            }
            other => panic!("marker slot: {other:?}"),
        }
    }

    #[test]
    fn wraparound_flips_parity() {
        let (mem, htm, log) = setup();
        // Capacity is 16 entries; append 3 sequences of 5+1 entries each to
        // wrap past the end.
        let data: Vec<(PAddr, u64)> = (0..5).map(|i| (PAddr::new(64 + i), i)).collect();
        for round in 0..3 {
            let mut txn = htm.begin(0);
            log.append_sequence(&mut txn, &data, Timestamp::from_raw(round + 1))
                .expect("append");
            txn.commit().expect("commit");
        }
        assert_eq!(log.head(&mem), 18);
        // Absolute index 16 and 17 are the wrapped entries (parity 1).
        assert_eq!(log.geometry().parity(15), 0);
        assert_eq!(log.geometry().parity(16), 1);
        let mut txn = htm.begin(0);
        let v0 = txn.read(log.geometry().slot_addr(16)).expect("read");
        txn.commit().ok();
        match decode(v0, mem.read(log.geometry().slot_addr(16).add(1))) {
            SlotState::Valid { parity, .. } => assert_eq!(parity, 1),
            other => panic!("wrapped slot: {other:?}"),
        }
    }

    #[test]
    fn nontx_append_is_immediately_visible() {
        let (mem, htm, log) = setup();
        let info = log.append_sequence_nontx(
            &htm,
            &[(PAddr::new(64), 4)],
            MarkerKind::Committed,
            Timestamp::from_raw(2),
        );
        assert_eq!(log.head(&mem), 2);
        log.commit_marker_nontx(&htm, info.marker_abs, Timestamp::from_raw(3));
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        match log.geometry().read_slot(&mem.crash(), 1) {
            SlotState::Valid {
                entry: Entry::Marker { kind, ts },
                ..
            } => {
                assert_eq!(kind, MarkerKind::Committed);
                assert_eq!(ts.raw(), 3);
            }
            other => panic!("marker: {other:?}"),
        }
    }

    #[test]
    fn crosses_half_detects_boundary() {
        let (_, _, log) = setup(); // capacity 16, half 8
        assert!(!log.crosses_half(0, 7));
        assert!(log.crosses_half(0, 8));
        assert!(log.crosses_half(7, 1));
        assert!(!log.crosses_half(8, 7));
        assert!(log.crosses_half(15, 1));
    }

    #[test]
    fn directory_round_trips_through_a_crash() {
        let (mem, _, log) = setup();
        let dir_at = mem.reserve_persistent(LogDirectory::words_needed(2));
        let other = LogGeometry {
            start: mem.reserve_persistent(32),
            capacity: 16,
        };
        let dir = LogDirectory {
            logs: vec![log.geometry(), other],
        };
        dir.store(&mem, 0, dir_at);
        let image = mem.crash();
        let loaded = LogDirectory::load(&image, dir_at).expect("directory present");
        assert_eq!(loaded, dir);
        assert_eq!(LogDirectory::load(&image, PAddr::new(8_000)), None);
    }
}
