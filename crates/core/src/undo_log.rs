//! Per-thread circular persistent undo logs.
//!
//! Each thread owns a circular log in persistent memory. During the Log
//! phase the executing hardware transaction appends one `<addr, oldValue>`
//! entry per persistent write plus a trailing `LOGGED` marker; after the
//! hardware transaction commits, the entries are flushed (CLWB without
//! drain — the next hardware transaction's fence semantics complete the
//! persist). The Redo or Validate phase later overwrites the marker with
//! `COMMITTED` and the commit timestamp (the paper's merged
//! LOGGED/COMMITTED optimization, Section 6).
//!
//! # Entry encoding (Section 5.2 + Section 6)
//!
//! Every entry is two 64-bit words. Persistence is only guaranteed at word
//! granularity, so recovery must detect entries whose two words did not
//! both persist. Following the paper, bits are stolen from the first word:
//!
//! ```text
//! data entry
//! meta word:  [63]=0 marker?  [62] wraparound parity   [61] old-value bit 0
//!             [60] present    [59] old-value bit 1     [47..0] address word index
//! value word: [63..2] old-value bits 63..2   [1..0] parity code (01 or 10)
//!
//! marker entry
//! meta word:  [63]=1 marker?  [62] wraparound parity   [59..48] entry count
//!             [60] present    [47..0] marker kind
//! value word: [63..2] timestamp (shifted left 2)  [1..0] parity code (01 or 10)
//! ```
//!
//! A data entry's old value needs all 64 bits, so its two lowest bits live
//! in the meta word and the value word's two lowest bits carry a
//! *wraparound parity code*: `01` on even laps, `10` on odd laps. An entry
//! is *fully persisted* iff its present bit is set, the meta parity bit
//! matches the lap, and the value word's code matches the meta parity.
//!
//! The code is two bits rather than one on purpose. The meta word's zero
//! state is covered by the present bit, but a value word that never
//! persisted reads as all zeros, and a single parity *bit* equal to the
//! even-lap value would accept that zero word as fully persisted —
//! decoding a half-persisted entry into a frankenstein `<addr, garbage>`
//! pair that rollback would then write into live data. Neither code value
//! is zero, so a missing value word decodes as `Torn` on every lap, and a
//! stale word from the previous lap carries the other code and is equally
//! rejected.
//!
//! A marker also records **how many data entries its sequence appended**
//! (meta bits 59..48, so a sequence is limited to 4095 entries). The count
//! makes every sequence self-describing: recovery anchors at a marker and
//! walks backward exactly `count` slots, and accepts the sequence only if
//! every one of them holds a current-lap data entry. A sequence that lost
//! *any* slot to the crash — a dropped line, a torn word, a stale lap —
//! was never drained, so by Crafty's ordering (undo entries are drained
//! before any in-place write) its in-place writes never started and the
//! whole sequence is safely discarded. Without the count, a marker whose
//! leading entries were dropped is indistinguishable from a complete
//! shorter sequence, and rolling back the surviving suffix would write
//! transient in-transaction values over live data.
//!
//! A marker's timestamp, by contrast, lives *entirely in the value word*
//! (shifted past the parity bit — timestamps are clock counts, far below
//! 2^63). This is deliberate, not cosmetic: the commit phases overwrite a
//! LOGGED marker with a COMMITTED one **in place**, and both versions
//! carry the same lap parity, so parity cannot detect a crash that
//! persists one word of the overwrite but not the other. With the
//! timestamp split across the words (as data entries do), such a mix would
//! decode as a valid marker carrying a *frankenstein* timestamp — bits of
//! the Log-phase timestamp spliced with a bit of the commit timestamp —
//! which can derail the recovery cut's rollback ordering. Keeping each
//! field within one word makes every word-granular persistence mix decode
//! to a legitimate `(kind, ts)` pair whose timestamp is one of the
//! sequence's real clock draws, either of which orders correctly.

use crafty_common::{PAddr, Timestamp, WORDS_PER_LINE};
use crafty_htm::{AbortCode, HtmRuntime, HwTxn};
use crafty_pmem::{MemorySpace, PersistentImage};

/// Bit 63 of the meta word: the entry is a LOGGED/COMMITTED marker.
const MARKER_BIT: u64 = 1 << 63;
/// Bit 62 of the meta word: wraparound parity.
const META_PARITY_BIT: u64 = 1 << 62;
/// Bit 61 of the meta word: bit 0 of a data entry's old value.
const STOLEN_PAYLOAD_BIT0: u64 = 1 << 61;
/// Bit 60 of the meta word: the slot has been written at least once.
const PRESENT_BIT: u64 = 1 << 60;
/// Bit 59 of the meta word: bit 1 of a data entry's old value.
const STOLEN_PAYLOAD_BIT1: u64 = 1 << 59;
/// Low 48 bits of the meta word: address word index or marker kind.
const ADDR_MASK: u64 = (1 << 48) - 1;
/// Shift of a marker's data-entry count within its meta word.
const MARKER_COUNT_SHIFT: u64 = 48;
/// Width mask of a marker's data-entry count (bits 59..48).
const MARKER_COUNT_MASK: u64 = 0xFFF;
/// Bits 1..0 of the value word: the wraparound parity code.
const VALUE_PARITY_MASK: u64 = 0b11;

/// The value word's two-bit parity code for a lap parity: `01` on even
/// laps, `10` on odd laps — never zero, so an unpersisted (all-zero) value
/// word can never pass as fully persisted (see the module docs).
fn value_parity_code(parity: u64) -> u64 {
    if parity & 1 == 1 {
        0b10
    } else {
        0b01
    }
}

/// Whether a marker entry was written by the Log phase or overwritten at
/// commit time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MarkerKind {
    /// The sequence's undo entries are complete and persisted; its writes
    /// may or may not have been performed.
    Logged,
    /// The sequence's writes were committed by a Redo or Validate phase
    /// (or an SGL section) at the recorded timestamp.
    Committed,
}

impl MarkerKind {
    fn code(self) -> u64 {
        match self {
            MarkerKind::Logged => 1,
            MarkerKind::Committed => 2,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(MarkerKind::Logged),
            2 => Some(MarkerKind::Committed),
            _ => None,
        }
    }
}

/// A decoded, fully persisted log entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Entry {
    /// `<addr, oldValue>`: `addr` held `old_value` before the logged
    /// transaction's write.
    Data {
        /// The written-to persistent address.
        addr: PAddr,
        /// The value the address held before the write.
        old_value: u64,
    },
    /// A LOGGED or COMMITTED marker concluding a sequence.
    Marker {
        /// Whether the sequence was merely logged or also committed.
        kind: MarkerKind,
        /// The sequence timestamp (Log time, overwritten with commit time).
        ts: Timestamp,
        /// How many data entries the sequence appended before this marker
        /// (identical in the LOGGED and COMMITTED versions, so an
        /// in-place marker overwrite can never tear it).
        data_entries: u64,
    },
}

/// The state of one log slot as seen by the recovery observer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotState {
    /// The slot has never been written (or only partially persisted its
    /// present bit); it carries no information.
    Absent,
    /// The slot was written but its two words carry mismatched parity —
    /// the entry did not fully persist.
    Torn,
    /// A fully persisted entry with the given lap parity.
    Valid {
        /// The wraparound parity both words carry.
        parity: u64,
        /// The decoded entry.
        entry: Entry,
    },
}

/// Encodes an entry into its two log words (see the module docs for why
/// markers keep their whole timestamp in the value word).
fn encode(entry: Entry, parity: u64) -> (u64, u64) {
    let parity = parity & 1;
    let (meta_fields, value_payload) = match entry {
        Entry::Data { addr, old_value } => {
            debug_assert!(addr.word() <= ADDR_MASK, "address exceeds 48-bit log field");
            let mut stolen = 0;
            if old_value & 1 == 1 {
                stolen |= STOLEN_PAYLOAD_BIT0;
            }
            if old_value & 2 == 2 {
                stolen |= STOLEN_PAYLOAD_BIT1;
            }
            (
                stolen | (addr.word() & ADDR_MASK),
                old_value & !VALUE_PARITY_MASK,
            )
        }
        Entry::Marker {
            kind,
            ts,
            data_entries,
        } => {
            debug_assert!(
                ts.raw() < 1 << 62,
                "timestamp exceeds the 62-bit marker field"
            );
            debug_assert!(
                data_entries <= MARKER_COUNT_MASK,
                "sequence exceeds the 4095-entry marker count field"
            );
            (
                MARKER_BIT
                    | ((data_entries & MARKER_COUNT_MASK) << MARKER_COUNT_SHIFT)
                    | kind.code(),
                ts.raw() << 2,
            )
        }
    };
    let mut meta = PRESENT_BIT | meta_fields;
    if parity == 1 {
        meta |= META_PARITY_BIT;
    }
    let value = value_payload | value_parity_code(parity);
    (meta, value)
}

/// Decodes two log words into a [`SlotState`].
pub fn decode(meta: u64, value: u64) -> SlotState {
    if meta & PRESENT_BIT == 0 {
        return SlotState::Absent;
    }
    let meta_parity = u64::from(meta & META_PARITY_BIT != 0);
    if value & VALUE_PARITY_MASK != value_parity_code(meta_parity) {
        return SlotState::Torn;
    }
    let entry = if meta & MARKER_BIT != 0 {
        match MarkerKind::from_code(meta & ADDR_MASK) {
            Some(kind) => Entry::Marker {
                kind,
                ts: Timestamp::from_raw(value >> 2),
                data_entries: (meta >> MARKER_COUNT_SHIFT) & MARKER_COUNT_MASK,
            },
            None => return SlotState::Torn,
        }
    } else {
        let old_value = (value & !VALUE_PARITY_MASK)
            | (u64::from(meta & STOLEN_PAYLOAD_BIT1 != 0) << 1)
            | u64::from(meta & STOLEN_PAYLOAD_BIT0 != 0);
        Entry::Data {
            addr: PAddr::new(meta & ADDR_MASK),
            old_value,
        }
    };
    SlotState::Valid {
        parity: meta_parity,
        entry,
    }
}

/// Where in memory a thread's circular log lives. This is all the recovery
/// observer needs (it reads it from the persistent log directory).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogGeometry {
    /// First word of the log region (2 × `capacity` words long).
    pub start: PAddr,
    /// Capacity in entries.
    pub capacity: u64,
}

impl LogGeometry {
    /// Number of persistent words the log occupies.
    pub fn words(&self) -> u64 {
        self.capacity * 2
    }

    /// The address of the meta word of the slot used by absolute entry
    /// index `abs`.
    pub fn slot_addr(&self, abs: u64) -> PAddr {
        self.start.add((abs % self.capacity) * 2)
    }

    /// The wraparound parity of absolute entry index `abs`.
    pub fn parity(&self, abs: u64) -> u64 {
        (abs / self.capacity) & 1
    }

    /// Reads slot `slot` (0-based position within the region, *not* an
    /// absolute index) from a crashed image.
    pub fn read_slot(&self, image: &PersistentImage, slot: u64) -> SlotState {
        let addr = self.start.add(slot * 2);
        decode(image.read(addr), image.read(addr.add(1)))
    }
}

/// Result of appending a sequence during the Log phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AppendInfo {
    /// Absolute index of the first data entry (equals the marker index for
    /// an empty sequence).
    pub first_abs: u64,
    /// Absolute index of the trailing marker entry.
    pub marker_abs: u64,
    /// Number of data entries (excluding the marker).
    pub data_entries: u64,
}

/// A per-thread handle to its circular persistent undo log.
///
/// The log head (an absolute, monotonically increasing entry count) lives
/// in *volatile simulated memory* and is read and written inside hardware
/// transactions: an aborted Log phase therefore rolls the head back
/// automatically, and another thread forcing a refresh entry into this log
/// (Section 5.2) synchronizes with the owner through ordinary HTM conflict
/// detection.
#[derive(Clone, Copy, Debug)]
pub struct UndoLog {
    geometry: LogGeometry,
    /// Volatile simulated word holding the absolute entry count.
    head_addr: PAddr,
}

impl UndoLog {
    /// Creates a handle over an already-reserved log region and head word.
    pub fn new(geometry: LogGeometry, head_addr: PAddr) -> Self {
        UndoLog {
            geometry,
            head_addr,
        }
    }

    /// The log's placement and capacity.
    pub fn geometry(&self) -> LogGeometry {
        self.geometry
    }

    /// The volatile word holding the absolute entry count.
    pub fn head_addr(&self) -> PAddr {
        self.head_addr
    }

    /// Reads the current absolute head (non-transactionally).
    pub fn head(&self, mem: &MemorySpace) -> u64 {
        mem.read(self.head_addr)
    }

    /// Appends `entries` (in order) followed by a `LOGGED` marker carrying
    /// `ts`, all inside the given hardware transaction. Nothing becomes
    /// visible or persistent unless the transaction commits.
    ///
    /// # Errors
    ///
    /// Propagates any hardware-transaction abort.
    pub fn append_sequence(
        &self,
        txn: &mut HwTxn<'_>,
        entries: &[(PAddr, u64)],
        ts: Timestamp,
    ) -> Result<AppendInfo, AbortCode> {
        let head = txn.read(self.head_addr)?;
        let mut abs = head;
        for &(addr, old_value) in entries {
            self.write_entry_txn(txn, abs, Entry::Data { addr, old_value })?;
            abs += 1;
        }
        let marker_abs = abs;
        self.write_entry_txn(
            txn,
            marker_abs,
            Entry::Marker {
                kind: MarkerKind::Logged,
                ts,
                data_entries: entries.len() as u64,
            },
        )?;
        txn.write(self.head_addr, marker_abs + 1)?;
        Ok(AppendInfo {
            first_abs: head,
            marker_abs,
            data_entries: entries.len() as u64,
        })
    }

    /// Overwrites the marker at `marker_abs` with a `COMMITTED` entry
    /// carrying `ts`, inside the given hardware transaction.
    /// `data_entries` must repeat the sequence's entry count so the
    /// overwritten marker stays self-describing.
    ///
    /// # Errors
    ///
    /// Propagates any hardware-transaction abort.
    pub fn commit_marker_txn(
        &self,
        txn: &mut HwTxn<'_>,
        marker_abs: u64,
        data_entries: u64,
        ts: Timestamp,
    ) -> Result<(), AbortCode> {
        self.write_entry_txn(
            txn,
            marker_abs,
            Entry::Marker {
                kind: MarkerKind::Committed,
                ts,
                data_entries,
            },
        )
    }

    /// Non-transactional variants used by the SGL (thread-unsafe) path,
    /// which runs while holding the global lock: writes go through the HTM
    /// runtime's non-transactional store so that doomed concurrent
    /// transactions still detect them.
    pub fn append_sequence_nontx(
        &self,
        htm: &HtmRuntime,
        entries: &[(PAddr, u64)],
        kind: MarkerKind,
        ts: Timestamp,
    ) -> AppendInfo {
        let head = htm.nontx_read(self.head_addr);
        let mut abs = head;
        for &(addr, old_value) in entries {
            self.write_entry_nontx(htm, abs, Entry::Data { addr, old_value });
            abs += 1;
        }
        let marker_abs = abs;
        self.write_entry_nontx(
            htm,
            marker_abs,
            Entry::Marker {
                kind,
                ts,
                data_entries: entries.len() as u64,
            },
        );
        htm.nontx_write(self.head_addr, marker_abs + 1);
        AppendInfo {
            first_abs: head,
            marker_abs,
            data_entries: entries.len() as u64,
        }
    }

    /// Overwrites a marker non-transactionally (SGL path). `data_entries`
    /// must repeat the sequence's entry count.
    pub fn commit_marker_nontx(
        &self,
        htm: &HtmRuntime,
        marker_abs: u64,
        data_entries: u64,
        ts: Timestamp,
    ) {
        self.write_entry_nontx(
            htm,
            marker_abs,
            Entry::Marker {
                kind: MarkerKind::Committed,
                ts,
                data_entries,
            },
        );
    }

    /// Issues CLWBs (no drain) for every line holding entries
    /// `[first_abs, last_abs]`, one queue interaction per touched line.
    /// Returns the number of lines flushed.
    ///
    /// Entry slots are laid out contiguously, so the touched words form at
    /// most two contiguous ranges (the tail of the region and, after a
    /// wraparound, its start). The flush loop walks *lines*, not slot
    /// words: a line holding four freshly appended entries is enqueued
    /// once, instead of paying eight per-word queue interactions that the
    /// queue-side dedup would then have to absorb. The entries' dirty
    /// words are already recorded in the lines' persistence masks (every
    /// transactional or `nontx` store marks its word), so the eventual
    /// drain persists exactly the appended slots.
    pub fn flush_entries(
        &self,
        mem: &MemorySpace,
        tid: usize,
        first_abs: u64,
        last_abs: u64,
    ) -> u64 {
        debug_assert!(last_abs >= first_abs);
        debug_assert!(last_abs - first_abs < self.geometry.capacity);
        let capacity = self.geometry.capacity;
        let entries = last_abs - first_abs + 1;
        let first_slot = first_abs % capacity;
        let before_wrap = entries.min(capacity - first_slot);
        let mut lines = 0u64;
        for (slot, count) in [(first_slot, before_wrap), (0, entries - before_wrap)] {
            if count == 0 {
                continue;
            }
            let first_word = self.geometry.start.word() + slot * 2;
            let last_word = first_word + count * 2 - 1;
            let mut line = PAddr::new(first_word).line().index();
            let last_line = PAddr::new(last_word).line().index();
            while line <= last_line {
                mem.clwb(tid, crafty_common::LineId::new(line).first_word());
                lines += 1;
                line += 1;
            }
        }
        lines
    }

    /// Issues a CLWB for the marker entry at `marker_abs`.
    pub fn flush_marker(&self, mem: &MemorySpace, tid: usize, marker_abs: u64) {
        mem.clwb(tid, self.geometry.slot_addr(marker_abs));
    }

    /// True if appending `extra` more entries would cross into the half of
    /// the circular log that the thread is about to start overwriting
    /// (the trigger point for the Section 5.2 lag checks).
    pub fn crosses_half(&self, head: u64, extra: u64) -> bool {
        let half = self.geometry.capacity / 2;
        if half == 0 {
            return false;
        }
        (head / half) != ((head + extra) / half)
    }

    fn write_entry_txn(
        &self,
        txn: &mut HwTxn<'_>,
        abs: u64,
        entry: Entry,
    ) -> Result<(), AbortCode> {
        let (meta, value) = encode(entry, self.geometry.parity(abs));
        let addr = self.geometry.slot_addr(abs);
        txn.write(addr, meta)?;
        txn.write(addr.add(1), value)?;
        Ok(())
    }

    fn write_entry_nontx(&self, htm: &HtmRuntime, abs: u64, entry: Entry) {
        let (meta, value) = encode(entry, self.geometry.parity(abs));
        let addr = self.geometry.slot_addr(abs);
        htm.nontx_write(addr, meta);
        htm.nontx_write(addr.add(1), value);
    }
}

/// The persistent log directory: the root object recovery starts from.
///
/// Layout (one word each): magic, thread count, per-thread log capacity,
/// recovery phase word (`RECOVERY_FLAG_WORD`), then one log start
/// address per thread. Written and persisted once when the engine is
/// constructed; only recovery ever touches the phase word afterwards.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogDirectory {
    /// One geometry per worker thread, indexed by thread id.
    pub logs: Vec<LogGeometry>,
}

const DIRECTORY_MAGIC: u64 = 0xC4AF_2020_0D0A_7E57;

/// Offset of the recovery phase word within the directory header. Zero at
/// rest; recovery sets it once its rollback is fully applied and clears it
/// after log zeroing completes, so an interrupted recovery pass can tell
/// whether re-parsing the logs is still safe (see
/// [`crate::recovery::recover_interrupted`]).
pub(crate) const RECOVERY_FLAG_WORD: u64 = 3;

impl LogDirectory {
    /// Number of words a directory for `threads` threads occupies.
    pub fn words_needed(threads: usize) -> u64 {
        4 + threads as u64
    }

    /// Writes and persists the directory at `at`.
    pub fn store(&self, mem: &MemorySpace, tid: usize, at: PAddr) {
        assert!(
            !self.logs.is_empty(),
            "directory must describe at least one log"
        );
        let capacity = self.logs[0].capacity;
        assert!(
            self.logs.iter().all(|g| g.capacity == capacity),
            "all per-thread logs must share a capacity"
        );
        mem.write(at, DIRECTORY_MAGIC);
        mem.write(at.add(1), self.logs.len() as u64);
        mem.write(at.add(2), capacity);
        mem.write(at.add(RECOVERY_FLAG_WORD), 0);
        for (i, g) in self.logs.iter().enumerate() {
            mem.write(at.add(4 + i as u64), g.start.word());
        }
        let words = Self::words_needed(self.logs.len());
        for w in 0..words.div_ceil(WORDS_PER_LINE) {
            mem.clwb(tid, at.add(w * WORDS_PER_LINE));
        }
        mem.drain(tid);
    }

    /// Reads a directory back from a crashed image. Returns `None` if the
    /// magic number does not match (no Crafty heap at `at`).
    pub fn load(image: &PersistentImage, at: PAddr) -> Option<LogDirectory> {
        if image.read(at) != DIRECTORY_MAGIC {
            return None;
        }
        let threads = image.read(at.add(1)) as usize;
        let capacity = image.read(at.add(2));
        let logs = (0..threads)
            .map(|i| LogGeometry {
                start: PAddr::new(image.read(at.add(4 + i as u64))),
                capacity,
            })
            .collect();
        Some(LogDirectory { logs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_common::BreakdownRecorder;
    use crafty_htm::HtmConfig;
    use crafty_pmem::PmemConfig;
    use std::sync::Arc;

    fn setup() -> (Arc<MemorySpace>, HtmRuntime, UndoLog) {
        let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
        let htm = HtmRuntime::new(
            Arc::clone(&mem),
            HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        );
        let capacity = 16;
        let start = mem.reserve_persistent(capacity * 2);
        let head = mem.reserve_volatile(1);
        let log = UndoLog::new(LogGeometry { start, capacity }, head);
        (mem, htm, log)
    }

    #[test]
    fn encode_decode_round_trips_data_entries() {
        for parity in [0, 1] {
            for value in [0u64, 1, 2, 3, u64::MAX, 0x8000_0000_0000_0001] {
                let entry = Entry::Data {
                    addr: PAddr::new(0x1234),
                    old_value: value,
                };
                let (m, v) = encode(entry, parity);
                match decode(m, v) {
                    SlotState::Valid {
                        parity: p,
                        entry: e,
                    } => {
                        assert_eq!(p, parity);
                        assert_eq!(e, entry);
                    }
                    other => panic!("expected valid entry, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_markers() {
        for kind in [MarkerKind::Logged, MarkerKind::Committed] {
            let entry = Entry::Marker {
                kind,
                ts: Timestamp::from_raw(0xABCD_EF01_2345),
                data_entries: 0xABC,
            };
            let (m, v) = encode(entry, 1);
            assert!(matches!(
                decode(m, v),
                SlotState::Valid { parity: 1, entry: e } if e == entry
            ));
        }
    }

    #[test]
    fn zero_words_decode_as_absent() {
        assert_eq!(decode(0, 0), SlotState::Absent);
    }

    #[test]
    fn torn_marker_overwrite_never_yields_a_frankenstein_timestamp() {
        // The commit phases overwrite a LOGGED marker with a COMMITTED one
        // in place; both versions carry the same lap parity, so a crash may
        // persist any combination of the two words undetected. Every such
        // combination must decode to a marker whose timestamp is one of the
        // two real clock draws — never a splice of their bits.
        let log_ts = Timestamp::from_raw(0x1234_5677);
        let commit_ts = Timestamp::from_raw(0x1234_5842);
        for parity in [0, 1] {
            let (m_logged, v_logged) = encode(
                Entry::Marker {
                    kind: MarkerKind::Logged,
                    ts: log_ts,
                    data_entries: 6,
                },
                parity,
            );
            let (m_committed, v_committed) = encode(
                Entry::Marker {
                    kind: MarkerKind::Committed,
                    ts: commit_ts,
                    data_entries: 6,
                },
                parity,
            );
            for (m, v) in [
                (m_logged, v_logged),
                (m_logged, v_committed),
                (m_committed, v_logged),
                (m_committed, v_committed),
            ] {
                match decode(m, v) {
                    SlotState::Valid {
                        entry: Entry::Marker { ts, .. },
                        ..
                    } => assert!(
                        ts == log_ts || ts == commit_ts,
                        "mixed marker words decoded to a spliced timestamp {ts:?}"
                    ),
                    other => panic!("mixed marker words must stay valid markers, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mismatched_parity_decodes_as_torn() {
        for parity in [0, 1] {
            let (m, v) = encode(
                Entry::Data {
                    addr: PAddr::new(5),
                    old_value: 7,
                },
                parity,
            );
            // Simulate the value word still carrying the previous lap's
            // parity code.
            let stale_value = (v & !0b11) | value_parity_code(parity ^ 1);
            assert_eq!(decode(m, stale_value), SlotState::Torn);
        }
    }

    #[test]
    fn missing_value_word_decodes_as_torn_on_both_laps() {
        // A value word that never persisted reads as zero. On either lap
        // this must surface as Torn — a one-bit parity scheme would accept
        // it on even laps and hand recovery a frankenstein old value.
        for parity in [0, 1] {
            for entry in [
                Entry::Data {
                    addr: PAddr::new(5),
                    old_value: 991,
                },
                Entry::Marker {
                    kind: MarkerKind::Logged,
                    ts: Timestamp::from_raw(9),
                    data_entries: 1,
                },
            ] {
                let (m, _) = encode(entry, parity);
                assert_eq!(decode(m, 0), SlotState::Torn, "parity {parity}: {entry:?}");
            }
        }
    }

    #[test]
    fn append_inside_transaction_is_invisible_until_commit() {
        let (mem, htm, log) = setup();
        let mut txn = htm.begin(0);
        let info = log
            .append_sequence(&mut txn, &[(PAddr::new(64), 9)], Timestamp::from_raw(3))
            .expect("append");
        assert_eq!(info.data_entries, 1);
        assert_eq!(log.head(&mem), 0, "head update must be buffered");
        txn.commit().expect("commit");
        assert_eq!(log.head(&mem), 2);
    }

    #[test]
    fn committed_and_flushed_entries_survive_a_crash() {
        let (mem, htm, log) = setup();
        let data = [(PAddr::new(64), 11u64), (PAddr::new(72), 22u64)];
        let mut txn = htm.begin(0);
        let info = log
            .append_sequence(&mut txn, &data, Timestamp::from_raw(5))
            .expect("append");
        txn.commit().expect("commit");
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        let image = mem.crash();
        let g = log.geometry();
        match g.read_slot(&image, 0) {
            SlotState::Valid {
                entry: Entry::Data { addr, old_value },
                ..
            } => {
                assert_eq!(addr, PAddr::new(64));
                assert_eq!(old_value, 11);
            }
            other => panic!("slot 0: {other:?}"),
        }
        match g.read_slot(&image, 2) {
            SlotState::Valid {
                entry: Entry::Marker { kind, ts, .. },
                ..
            } => {
                assert_eq!(kind, MarkerKind::Logged);
                assert_eq!(ts.raw(), 5);
            }
            other => panic!("slot 2: {other:?}"),
        }
    }

    #[test]
    fn commit_marker_overwrites_logged_entry() {
        let (mem, htm, log) = setup();
        let mut txn = htm.begin(0);
        let info = log
            .append_sequence(&mut txn, &[(PAddr::new(64), 1)], Timestamp::from_raw(7))
            .expect("append");
        txn.commit().expect("commit");
        let mut txn2 = htm.begin(0);
        log.commit_marker_txn(
            &mut txn2,
            info.marker_abs,
            info.data_entries,
            Timestamp::from_raw(9),
        )
        .expect("commit marker");
        txn2.commit().expect("commit");
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        let image = mem.crash();
        match log.geometry().read_slot(&image, info.marker_abs) {
            SlotState::Valid {
                entry: Entry::Marker { kind, ts, .. },
                ..
            } => {
                assert_eq!(kind, MarkerKind::Committed);
                assert_eq!(ts.raw(), 9);
            }
            other => panic!("marker slot: {other:?}"),
        }
    }

    #[test]
    fn wraparound_flips_parity() {
        let (mem, htm, log) = setup();
        // Capacity is 16 entries; append 3 sequences of 5+1 entries each to
        // wrap past the end.
        let data: Vec<(PAddr, u64)> = (0..5).map(|i| (PAddr::new(64 + i), i)).collect();
        for round in 0..3 {
            let mut txn = htm.begin(0);
            log.append_sequence(&mut txn, &data, Timestamp::from_raw(round + 1))
                .expect("append");
            txn.commit().expect("commit");
        }
        assert_eq!(log.head(&mem), 18);
        // Absolute index 16 and 17 are the wrapped entries (parity 1).
        assert_eq!(log.geometry().parity(15), 0);
        assert_eq!(log.geometry().parity(16), 1);
        let mut txn = htm.begin(0);
        let v0 = txn.read(log.geometry().slot_addr(16)).expect("read");
        txn.commit().ok();
        match decode(v0, mem.read(log.geometry().slot_addr(16).add(1))) {
            SlotState::Valid { parity, .. } => assert_eq!(parity, 1),
            other => panic!("wrapped slot: {other:?}"),
        }
    }

    #[test]
    fn nontx_append_is_immediately_visible() {
        let (mem, htm, log) = setup();
        let info = log.append_sequence_nontx(
            &htm,
            &[(PAddr::new(64), 4)],
            MarkerKind::Committed,
            Timestamp::from_raw(2),
        );
        assert_eq!(log.head(&mem), 2);
        log.commit_marker_nontx(
            &htm,
            info.marker_abs,
            info.data_entries,
            Timestamp::from_raw(3),
        );
        log.flush_entries(&mem, 0, info.first_abs, info.marker_abs);
        mem.drain(0);
        match log.geometry().read_slot(&mem.crash(), 1) {
            SlotState::Valid {
                entry: Entry::Marker { kind, ts, .. },
                ..
            } => {
                assert_eq!(kind, MarkerKind::Committed);
                assert_eq!(ts.raw(), 3);
            }
            other => panic!("marker: {other:?}"),
        }
    }

    #[test]
    fn crosses_half_detects_boundary() {
        let (_, _, log) = setup(); // capacity 16, half 8
        assert!(!log.crosses_half(0, 7));
        assert!(log.crosses_half(0, 8));
        assert!(log.crosses_half(7, 1));
        assert!(!log.crosses_half(8, 7));
        assert!(log.crosses_half(15, 1));
    }

    #[test]
    fn directory_round_trips_through_a_crash() {
        let (mem, _, log) = setup();
        let dir_at = mem.reserve_persistent(LogDirectory::words_needed(2));
        let other = LogGeometry {
            start: mem.reserve_persistent(32),
            capacity: 16,
        };
        let dir = LogDirectory {
            logs: vec![log.geometry(), other],
        };
        dir.store(&mem, 0, dir_at);
        let image = mem.crash();
        let loaded = LogDirectory::load(&image, dir_at).expect("directory present");
        assert_eq!(loaded, dir);
        assert_eq!(LogDirectory::load(&image, PAddr::new(8_000)), None);
    }
}
