//! Crafty: efficient, HTM-compatible persistent transactions.
//!
//! This crate is the core of the reproduction of *Crafty: Efficient,
//! HTM-Compatible Persistent Transactions* (Genç, Bond, Xu — PLDI 2020).
//! It implements **nondestructive undo logging** — running a persistent
//! transaction's body inside a hardware transaction that records undo
//! entries and then rolls its own writes back before committing, so the
//! undo log can be persisted *before* any program write becomes visible —
//! and the full Crafty engine built on it:
//!
//! * the **Log**, **Redo**, and **Validate** phases and the single-global-
//!   lock fallback of thread-safe mode (Sections 3–4, Figure 3);
//! * **thread-unsafe mode** for programs that already provide atomicity
//!   (Section 4.4, Figure 4);
//! * per-thread **circular persistent undo logs** with wraparound bits,
//!   merged LOGGED/COMMITTED markers, and the `tsLowerBound`/`MAX_LAG`
//!   bookkeeping (Sections 5.2 and 6);
//! * the **recovery observer** (Section 5), which the paper's artifact
//!   leaves unimplemented;
//! * the ablation variants **Crafty-NoRedo** and **Crafty-NoValidate**
//!   used in the evaluation;
//! * **group commit**: durability-deferred execution
//!   ([`crafty_common::TmThread::execute_deferred`]) that lets a group of
//!   transactions share one drain barrier
//!   ([`crafty_common::TmThread::flush_deferred`]) — each transaction
//!   still logs, persists its undo entries before any in-place write, and
//!   marks COMMITTED individually; only the durability *acknowledgement*
//!   is batched.
//!
//! The engine runs on the simulated substrates in [`crafty_pmem`]
//! (DRAM-emulated NVM with an explicit crash model) and [`crafty_htm`]
//! (an RTM-like software HTM); see `ARCHITECTURE.md` at the repository
//! root for the substitution rationale.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use crafty_common::PersistentTm;
//! use crafty_pmem::{MemorySpace, PmemConfig};
//! use crafty_core::{recover, Crafty, CraftyConfig};
//!
//! // A persistent heap and a Crafty engine over it.
//! let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
//! let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
//! let counter = mem.reserve_persistent(1);
//!
//! // Run a persistent transaction.
//! let mut thread = crafty.register_thread(0);
//! thread.execute(&mut |ops| {
//!     let v = ops.read(counter)?;
//!     ops.write(counter, v + 1)?;
//!     Ok(())
//! });
//! crafty.quiesce();
//!
//! // Crash, recover, and observe a consistent state.
//! let mut image = mem.crash();
//! recover(&mut image, crafty.directory_addr())?;
//! assert!(image.read(counter) <= 1);
//! # Ok::<(), crafty_core::RecoveryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_log;
pub mod config;
pub mod engine;
pub mod recovery;
pub mod thread;
pub mod undo_log;

pub use alloc_log::AllocLog;
pub use config::{CraftyConfig, CraftyVariant, FallbackPolicy, ThreadingMode};
pub use engine::Crafty;
pub use recovery::{
    logs_are_clean, parse_sequences, recover, recover_interrupted, InterruptedRecovery,
    RecoveryError, RecoveryReport, Sequence,
};
pub use thread::CraftyThread;
pub use undo_log::{Entry, LogDirectory, LogGeometry, MarkerKind, SlotState, UndoLog};
