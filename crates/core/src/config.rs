//! Configuration of the Crafty engine.

/// Which of the paper's Crafty configurations to run.
///
/// Besides full Crafty, the evaluation (Section 7.1) uses two ablation
/// variants that are still fully functioning and provide the same
/// guarantees: `Crafty-NoRedo` commits every updating transaction through
/// the Validate phase, and `Crafty-NoValidate` restarts the Log phase
/// whenever the Redo phase's timestamp check fails.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CraftyVariant {
    /// Full Crafty: Log → Redo → (Validate if Redo fails) → SGL fallback.
    #[default]
    Full,
    /// Skip the Redo phase; always use Validate after the Log phase.
    NoRedo,
    /// Skip the Validate phase; a failed Redo restarts the Log phase.
    NoValidate,
}

impl CraftyVariant {
    /// The engine name used in the paper's figure legends.
    pub const fn engine_name(self) -> &'static str {
        match self {
            CraftyVariant::Full => "Crafty",
            CraftyVariant::NoRedo => "Crafty-NoRedo",
            CraftyVariant::NoValidate => "Crafty-NoValidate",
        }
    }
}

/// Whether Crafty itself provides thread atomicity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ThreadingMode {
    /// Thread-safe mode (the paper's focus): persistent transactions get
    /// all ACID properties from Crafty itself.
    #[default]
    ThreadSafe,
    /// Thread-unsafe mode: some other mechanism (locks) already provides
    /// atomicity, so Crafty only provides failure atomicity / durability.
    /// The Redo phase runs unconditionally and Validate is never needed
    /// (Section 4.4, Figure 4).
    ThreadUnsafe,
}

/// Which software fallback serializes transactions that exhaust their
/// hardware retry budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FallbackPolicy {
    /// The single global lock of the original design: one fallback
    /// serializes every thread, and every hardware phase subscribes to the
    /// SGL word. Kept as the reference mode — simple enough to trust, so
    /// the per-line policy can be tested differentially against it.
    Sgl,
    /// Per-line write locking (the default): a fallback transaction
    /// acquires write locks on exactly the lines in its write set (sorted
    /// order, no deadlock) and validates read versions before publishing;
    /// hardware transactions subscribe only to the lock words of lines
    /// they actually read, so a fallback conflicts only where it touches.
    #[default]
    PerLine,
}

impl FallbackPolicy {
    /// Short label for reports and benchmark artifacts.
    pub const fn label(self) -> &'static str {
        match self {
            FallbackPolicy::Sgl => "sgl",
            FallbackPolicy::PerLine => "per-line",
        }
    }
}

/// Tuning parameters for a [`crate::Crafty`] engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CraftyConfig {
    /// Which Crafty configuration to run.
    pub variant: CraftyVariant,
    /// Whether Crafty provides thread atomicity or only durability.
    pub mode: ThreadingMode,
    /// How many times a persistent transaction restarts its phases before
    /// falling back to the single global lock.
    pub max_phase_restarts: u32,
    /// How many times an individual hardware transaction is retried within
    /// one phase attempt before the attempt counts as failed.
    pub htm_retries_per_phase: u32,
    /// Capacity, in entries, of each thread's circular persistent undo log.
    /// Each entry occupies two 64-bit words. Must hold at least two
    /// maximal transactions (Section 5.2).
    pub undo_log_entries: u64,
    /// `MAX_LAG`: the maximum logical-time distance recovery may have to
    /// roll back (Section 5.2), in clock ticks.
    pub max_lag: u64,
    /// Number of worker threads the engine will serve.
    pub max_threads: usize,
    /// Size, in words, of the persistent heap served by transactional
    /// allocation ([`crafty_common::TxnOps::alloc`]).
    pub heap_words: u64,
    /// Which software fallback serializes transactions that exhaust their
    /// hardware retry budget.
    pub fallback: FallbackPolicy,
    /// Testing hook: when true, every thread-safe transaction skips the
    /// hardware phases and goes straight to the configured fallback, so
    /// torture and contention suites can put crash points and conflicts
    /// inside the fallback windows deterministically.
    pub force_fallback: bool,
}

impl CraftyConfig {
    /// Defaults sized for the unit and property tests (small logs, small
    /// heap, tight lag bound so the lag machinery is exercised).
    pub fn small_for_tests() -> Self {
        CraftyConfig {
            variant: CraftyVariant::Full,
            mode: ThreadingMode::ThreadSafe,
            max_phase_restarts: 8,
            htm_retries_per_phase: 4,
            undo_log_entries: 256,
            max_lag: 1 << 20,
            max_threads: 8,
            heap_words: 1 << 14,
            fallback: FallbackPolicy::PerLine,
            force_fallback: false,
        }
    }

    /// Defaults sized for the benchmark harness.
    pub fn benchmark(max_threads: usize) -> Self {
        CraftyConfig {
            variant: CraftyVariant::Full,
            mode: ThreadingMode::ThreadSafe,
            max_phase_restarts: 8,
            htm_retries_per_phase: 4,
            undo_log_entries: 1 << 14,
            max_lag: 1 << 30,
            max_threads,
            heap_words: 1 << 22,
            fallback: FallbackPolicy::PerLine,
            force_fallback: false,
        }
    }

    /// Sets the variant (builder style).
    pub fn with_variant(mut self, variant: CraftyVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the threading mode (builder style).
    pub fn with_mode(mut self, mode: ThreadingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the per-thread undo-log capacity in entries (builder style).
    pub fn with_undo_log_entries(mut self, entries: u64) -> Self {
        self.undo_log_entries = entries;
        self
    }

    /// Sets the persistent heap size in words (builder style).
    pub fn with_heap_words(mut self, words: u64) -> Self {
        self.heap_words = words;
        self
    }

    /// Sets the number of worker threads (builder style).
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// Sets the software fallback policy (builder style).
    pub fn with_fallback(mut self, fallback: FallbackPolicy) -> Self {
        self.fallback = fallback;
        self
    }

    /// Forces every thread-safe transaction through the software fallback
    /// (builder style). A testing hook — see [`CraftyConfig::force_fallback`].
    pub fn with_force_fallback(mut self, force: bool) -> Self {
        self.force_fallback = force;
        self
    }
}

impl Default for CraftyConfig {
    fn default() -> Self {
        CraftyConfig::benchmark(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_match_paper_legends() {
        assert_eq!(CraftyVariant::Full.engine_name(), "Crafty");
        assert_eq!(CraftyVariant::NoRedo.engine_name(), "Crafty-NoRedo");
        assert_eq!(CraftyVariant::NoValidate.engine_name(), "Crafty-NoValidate");
        assert_eq!(CraftyVariant::default(), CraftyVariant::Full);
    }

    #[test]
    fn builders_compose() {
        let cfg = CraftyConfig::small_for_tests()
            .with_variant(CraftyVariant::NoRedo)
            .with_mode(ThreadingMode::ThreadUnsafe)
            .with_undo_log_entries(64)
            .with_heap_words(1024)
            .with_max_threads(2);
        assert_eq!(cfg.variant, CraftyVariant::NoRedo);
        assert_eq!(cfg.mode, ThreadingMode::ThreadUnsafe);
        assert_eq!(cfg.undo_log_entries, 64);
        assert_eq!(cfg.heap_words, 1024);
        assert_eq!(cfg.max_threads, 2);
    }

    #[test]
    fn default_is_thread_safe_full() {
        let cfg = CraftyConfig::default();
        assert_eq!(cfg.variant, CraftyVariant::Full);
        assert_eq!(cfg.mode, ThreadingMode::ThreadSafe);
        assert!(cfg.max_phase_restarts > 0);
        assert_eq!(cfg.fallback, FallbackPolicy::PerLine);
        assert!(!cfg.force_fallback);
    }

    #[test]
    fn fallback_builders_compose() {
        let cfg = CraftyConfig::small_for_tests()
            .with_fallback(FallbackPolicy::Sgl)
            .with_force_fallback(true);
        assert_eq!(cfg.fallback, FallbackPolicy::Sgl);
        assert!(cfg.force_fallback);
        assert_eq!(FallbackPolicy::Sgl.label(), "sgl");
        assert_eq!(FallbackPolicy::PerLine.label(), "per-line");
    }
}
