//! Allocation logging for re-executable transaction bodies.
//!
//! Because Crafty's Log and Validate phases execute the same body twice,
//! the implementation "logs allocations during the Log phase and reuses the
//! allocated memory at corresponding malloc calls during the Validate
//! phase. Similarly, \[it\] logs free calls during the Log phase, and either
//! performs the logged frees after completing the Redo phase or allows the
//! Validate phase to perform free calls and then discards logged frees"
//! (Section 6). [`AllocLog`] implements exactly that bookkeeping.

use crafty_common::PAddr;
use crafty_pmem::PmemAllocator;

/// Per-transaction record of allocator activity.
#[derive(Clone, Debug, Default)]
pub struct AllocLog {
    allocations: Vec<(PAddr, u64)>,
    frees: Vec<(PAddr, u64)>,
    replay_cursor: usize,
}

impl AllocLog {
    /// Creates an empty allocation log.
    pub fn new() -> Self {
        AllocLog::default()
    }

    /// Records an allocation made during the Log phase.
    pub fn record_alloc(&mut self, addr: PAddr, words: u64) {
        self.allocations.push((addr, words));
    }

    /// Records a free requested by the transaction body; the actual release
    /// is deferred until the persistent transaction commits.
    pub fn record_free(&mut self, addr: PAddr, words: u64) {
        self.frees.push((addr, words));
    }

    /// Number of allocations recorded so far.
    pub fn allocations(&self) -> usize {
        self.allocations.len()
    }

    /// Number of deferred frees recorded so far.
    pub fn deferred_frees(&self) -> usize {
        self.frees.len()
    }

    /// Prepares for a Validate-phase re-execution: subsequent
    /// [`AllocLog::replay_alloc`] calls hand back the Log phase's
    /// allocations in order.
    pub fn start_replay(&mut self) {
        self.replay_cursor = 0;
    }

    /// Returns the next logged allocation, checking that the re-executed
    /// body asked for the same size. Returns `None` if the body diverged
    /// (requested a different size or more allocations than were logged),
    /// which the Validate phase treats as a validation failure.
    pub fn replay_alloc(&mut self, words: u64) -> Option<PAddr> {
        let (addr, logged_words) = *self.allocations.get(self.replay_cursor)?;
        if logged_words != words {
            return None;
        }
        self.replay_cursor += 1;
        Some(addr)
    }

    /// Releases every logged allocation back to the allocator. Called when
    /// the whole persistent transaction is abandoned and restarted from the
    /// Log phase, so that failed attempts do not leak persistent memory.
    pub fn release_allocations(&mut self, allocator: &PmemAllocator) {
        for (addr, words) in self.allocations.drain(..) {
            allocator.free(addr, words);
        }
        self.replay_cursor = 0;
        self.frees.clear();
    }

    /// Performs the deferred frees. Called once the persistent transaction
    /// has committed (after the Redo or Validate phase, or the SGL path).
    pub fn apply_frees(&mut self, allocator: &PmemAllocator) {
        for (addr, words) in self.frees.drain(..) {
            allocator.free(addr, words);
        }
        self.allocations.clear();
        self.replay_cursor = 0;
    }

    /// Discards all records without touching the allocator (used for
    /// read-only transactions).
    pub fn clear(&mut self) {
        self.allocations.clear();
        self.frees.clear();
        self.replay_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allocator() -> PmemAllocator {
        PmemAllocator::new(PAddr::new(64), 1024)
    }

    #[test]
    fn replay_returns_same_addresses_in_order() {
        let a = allocator();
        let mut log = AllocLog::new();
        let x = a.alloc(4).expect("alloc");
        let y = a.alloc(8).expect("alloc");
        log.record_alloc(x, 4);
        log.record_alloc(y, 8);
        log.start_replay();
        assert_eq!(log.replay_alloc(4), Some(x));
        assert_eq!(log.replay_alloc(8), Some(y));
        assert_eq!(log.replay_alloc(8), None, "no more allocations were logged");
    }

    #[test]
    fn replay_with_diverging_size_fails() {
        let mut log = AllocLog::new();
        log.record_alloc(PAddr::new(100), 4);
        log.start_replay();
        assert_eq!(log.replay_alloc(8), None);
    }

    #[test]
    fn release_allocations_returns_memory() {
        let a = allocator();
        let mut log = AllocLog::new();
        let x = a.alloc(4).expect("alloc");
        log.record_alloc(x, 4);
        assert_eq!(a.live_allocations(), 1);
        log.release_allocations(&a);
        assert_eq!(a.live_allocations(), 0);
        assert_eq!(log.allocations(), 0);
    }

    #[test]
    fn frees_are_deferred_until_applied() {
        let a = allocator();
        let mut log = AllocLog::new();
        let x = a.alloc(4).expect("alloc");
        log.record_free(x, 4);
        assert_eq!(a.live_allocations(), 1, "free must be deferred");
        log.apply_frees(&a);
        assert_eq!(a.live_allocations(), 0);
        assert_eq!(log.deferred_frees(), 0);
    }

    #[test]
    fn clear_discards_everything() {
        let mut log = AllocLog::new();
        log.record_alloc(PAddr::new(100), 4);
        log.record_free(PAddr::new(200), 4);
        log.clear();
        assert_eq!(log.allocations(), 0);
        assert_eq!(log.deferred_frees(), 0);
    }
}
