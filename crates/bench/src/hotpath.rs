//! The tracked hot-path benchmark behind `BENCH_hotpath.json`.
//!
//! Every PR that touches the transaction hot path regenerates this
//! artifact (`cargo run --release -p crafty-bench --bin figures -- hotpath`)
//! so the repository carries a perf trajectory: single-point bank-workload
//! throughput per engine per thread count, plus the hardware-transaction
//! abort breakdown that explains throughput shifts.

use crafty_common::{CompletionPath, HwTxnOutcome};
use crafty_stats::Json;
use crafty_workloads::{BankWorkload, Contention};

use crate::{round2, round4, run_point, HarnessConfig};

/// One (engine, thread count) sample of the tracked hot-path benchmark.
#[derive(Clone, Debug)]
pub struct HotpathPoint {
    /// Engine legend label.
    pub engine: String,
    /// Worker thread count.
    pub threads: usize,
    /// Persistent transactions executed across all threads.
    pub transactions: u64,
    /// Transactions per second.
    pub ops_per_sec: f64,
    /// Completion-path counts (read-only / redo / validate / sgl / …).
    pub completions: Vec<(&'static str, u64)>,
    /// Hardware-transaction outcome counts (commit / conflict / …).
    pub hw_outcomes: Vec<(&'static str, u64)>,
    /// Words actually copied to the persistent image by write-backs.
    pub words_persisted: u64,
    /// Words whole-line write-backs would have copied for the same events.
    pub line_words_persisted: u64,
    /// Measured write amplification (`words / line_words`; 1.0 = fully
    /// dirty lines, lower = the word-granular pipeline saved bandwidth).
    pub write_amplification: f64,
    /// Lines written back by drains.
    pub lines_persisted: u64,
    /// Ranged flushes the drains issued; `< lines_persisted` means the
    /// coalescing pipeline found adjacent runs.
    pub flush_ranges: u64,
    /// Average adjacent-line run length (`range_lines / flush_ranges`).
    pub lines_per_range: f64,
}

/// Runs the tracked benchmark: the medium-contention bank workload (the
/// paper's Figure 6b configuration) on every engine at every configured
/// thread count.
pub fn run_hotpath(cfg: &HarnessConfig) -> Vec<HotpathPoint> {
    let max_threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let workload = BankWorkload::paper(Contention::Medium, max_threads);
    let mut points = Vec::new();
    for &kind in &cfg.engines {
        for &threads in &cfg.thread_counts {
            let (m, breakdown, pmem) = run_point(&workload, kind, threads, cfg);
            points.push(HotpathPoint {
                engine: kind.label().to_string(),
                threads,
                transactions: m.transactions,
                ops_per_sec: m.throughput(),
                completions: CompletionPath::ALL
                    .iter()
                    .map(|&p| (p.label(), breakdown.completions(p)))
                    .collect(),
                hw_outcomes: HwTxnOutcome::ALL
                    .iter()
                    .map(|&o| (o.label(), breakdown.hw(o)))
                    .collect(),
                words_persisted: pmem.words_persisted,
                line_words_persisted: pmem.line_words_persisted,
                write_amplification: pmem.write_amplification(),
                lines_persisted: pmem.lines_persisted,
                flush_ranges: pmem.flush_ranges,
                lines_per_range: pmem.lines_per_range(),
            });
        }
    }
    points
}

/// Renders the hot-path samples as the committed JSON artifact.
pub fn render_hotpath_json(cfg: &HarnessConfig, points: &[HotpathPoint]) -> String {
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        let mut completions = Json::object();
        for (label, count) in &p.completions {
            completions.set(label, Json::UInt(*count));
        }
        let mut hw = Json::object();
        for (label, count) in &p.hw_outcomes {
            hw.set(label, Json::UInt(*count));
        }
        arr.push(
            Json::object()
                .with("engine", Json::from(p.engine.as_str()))
                .with("threads", Json::from(p.threads))
                .with("transactions", Json::from(p.transactions))
                .with("ops_per_sec", Json::Float(round2(p.ops_per_sec)))
                .with("words_persisted", Json::UInt(p.words_persisted))
                .with(
                    "write_amplification",
                    Json::Float(round4(p.write_amplification)),
                )
                .with("lines_persisted", Json::UInt(p.lines_persisted))
                .with("flush_ranges", Json::UInt(p.flush_ranges))
                .with("lines_per_range", Json::Float(round4(p.lines_per_range)))
                .with("completions", completions)
                .with("hw_outcomes", hw),
        );
    }
    Json::object()
        .with("benchmark", Json::from("bank (medium contention)"))
        .with(
            "config",
            Json::object()
                .with("txns_per_thread", Json::from(cfg.txns_per_thread))
                .with("drain_latency_ns", Json::from(cfg.latency.drain_ns))
                .with("seed", Json::from(cfg.seed)),
        )
        .with("points", Json::Array(arr))
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::LatencyModel;
    use crafty_workloads::EngineKind;

    #[test]
    fn hotpath_points_and_json_are_produced() {
        let cfg = HarnessConfig {
            engines: vec![EngineKind::NonDurable, EngineKind::Crafty],
            thread_counts: vec![1],
            txns_per_thread: 50,
            latency: LatencyModel::instant(),
            persistent_words: 1 << 18,
            seed: 1,
        };
        let points = run_hotpath(&cfg);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.transactions == 50));
        assert!(points.iter().all(|p| p.ops_per_sec > 0.0));
        let json = render_hotpath_json(&cfg, &points);
        assert!(json.contains("\"engine\": \"Crafty\""));
        assert!(json.contains("\"ops_per_sec\""));
        assert!(json.contains("\"conflict\""));
        // The Crafty point must account for every transaction in its
        // completion breakdown.
        let crafty = &points[1];
        let total: u64 = crafty.completions.iter().map(|(_, c)| c).sum();
        assert_eq!(total, crafty.transactions);
    }
}
