//! The one flag parser behind every `figures` subcommand.
//!
//! Before this module, the `figures` binary hand-parsed flags three
//! different ways (the default targets command, `compare`, and `torture`),
//! each with its own error handling and its own chance to drift from the
//! `--help` text. Here, each subcommand declares its flags once as a
//! [`SubcommandSpec`]; [`parse`] validates any argument vector against a
//! spec, and [`render_help`] generates the usage text from the same table
//! — so the parser and the help can't disagree.
//!
//! The grammar is deliberately small (it is a benchmark harness, not a
//! general CLI framework): long flags only, every flag either boolean or
//! taking exactly one value, values as the following argument, repeated
//! flags keep the last value, and anything not starting with `--` is a
//! positional.

/// One flag of a subcommand.
#[derive(Clone, Copy, Debug)]
pub struct FlagDef {
    /// The flag, with leading dashes (e.g. `"--threads"`).
    pub name: &'static str,
    /// The value's metavariable (e.g. `"N"` or `"a,b,c"`); `None` makes
    /// this a boolean flag.
    pub value: Option<&'static str>,
    /// One-line description for the help text.
    pub help: &'static str,
}

/// One subcommand: its name, what it does, and every flag it accepts.
#[derive(Clone, Copy, Debug)]
pub struct SubcommandSpec {
    /// Subcommand word (`"compare"`), or `""` for the default command.
    pub name: &'static str,
    /// Positional-argument metavariable (e.g. `"targets..."`), if any.
    pub positional: Option<&'static str>,
    /// One-line summary for the help text.
    pub summary: &'static str,
    /// Every flag the subcommand accepts.
    pub flags: &'static [FlagDef],
}

/// The result of parsing an argument vector against a [`SubcommandSpec`].
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    /// `(flag name, value)` pairs; boolean flags store an empty value.
    flags: Vec<(String, String)>,
    /// Non-flag arguments, in order.
    positionals: Vec<String>,
}

/// Parses `args` (without the program or subcommand name) against `spec`.
///
/// # Errors
///
/// A human-readable message on an unknown flag, a value flag at the end of
/// the line, or a positional where the spec allows none.
pub fn parse(spec: &SubcommandSpec, args: &[String]) -> Result<ParsedArgs, String> {
    let mut out = ParsedArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(def) = spec.flags.iter().find(|d| d.name == arg.as_str()) {
            let value = if def.value.is_some() {
                it.next()
                    .ok_or_else(|| format!("{} needs a value", def.name))?
                    .clone()
            } else {
                String::new()
            };
            out.flags.push((arg.clone(), value));
        } else if arg.starts_with("--") {
            let ctx = if spec.name.is_empty() {
                "figures".to_string()
            } else {
                format!("figures {}", spec.name)
            };
            return Err(format!("unknown flag {arg} for `{ctx}` (see --help)"));
        } else if spec.positional.is_some() {
            out.positionals.push(arg.clone());
        } else {
            return Err(format!(
                "`figures {}` takes no positional arguments, got `{arg}`",
                spec.name
            ));
        }
    }
    Ok(out)
}

impl ParsedArgs {
    /// Whether the flag appeared at all.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The flag's value (last occurrence wins), if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The flag's value parsed as `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// A message naming the flag when the value does not parse.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{name} needs a valid value, got `{v}`")),
        }
    }

    /// The flag's value split on commas and parsed element-wise, or
    /// `default` when absent.
    ///
    /// # Errors
    ///
    /// A message naming the flag when any element does not parse.
    pub fn parsed_list<T: std::str::FromStr>(
        &self,
        name: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| format!("{name}: invalid element `{s}`"))
                })
                .collect(),
        }
    }

    /// The positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

/// Renders the complete usage text from the subcommand table — every
/// subcommand, every flag, one source of truth.
pub fn render_help(title: &str, specs: &[SubcommandSpec]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n\nUSAGE:\n");
    for spec in specs {
        let mut line = String::from("  figures");
        if !spec.name.is_empty() {
            line.push(' ');
            line.push_str(spec.name);
        }
        if let Some(pos) = spec.positional {
            line.push_str(" [");
            line.push_str(pos);
            line.push(']');
        }
        if !spec.flags.is_empty() {
            line.push_str(" [flags]");
        }
        out.push_str(&line);
        out.push('\n');
    }
    for spec in specs {
        out.push('\n');
        if spec.name.is_empty() {
            out.push_str(&format!("FIGURES (default command) — {}\n", spec.summary));
        } else {
            out.push_str(&format!(
                "{} — {}\n",
                spec.name.to_uppercase(),
                spec.summary
            ));
        }
        for def in spec.flags {
            let left = match def.value {
                Some(meta) => format!("{} {meta}", def.name),
                None => def.name.to_string(),
            };
            out.push_str(&format!("  {left:<26} {}\n", def.help));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAGS: &[FlagDef] = &[
        FlagDef {
            name: "--threads",
            value: Some("a,b,c"),
            help: "thread counts",
        },
        FlagDef {
            name: "--paper",
            value: None,
            help: "paper scale",
        },
        FlagDef {
            name: "--tolerance",
            value: Some("F"),
            help: "allowed regression",
        },
    ];

    const SPEC: SubcommandSpec = SubcommandSpec {
        name: "",
        positional: Some("targets..."),
        summary: "regenerate figures",
        flags: FLAGS,
    };

    const NO_POS: SubcommandSpec = SubcommandSpec {
        name: "compare",
        positional: None,
        summary: "perf gate",
        flags: FLAGS,
    };

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_values_and_positionals_parse() {
        let p = parse(
            &SPEC,
            &argv(&["fig6", "--threads", "1,2,4", "--paper", "kv"]),
        )
        .expect("parse");
        assert!(p.has("--paper"));
        assert!(!p.has("--tolerance"));
        assert_eq!(p.value("--threads"), Some("1,2,4"));
        assert_eq!(p.positionals(), &["fig6".to_string(), "kv".to_string()]);
        assert_eq!(
            p.parsed_list::<usize>("--threads", vec![]).unwrap(),
            vec![1, 2, 4]
        );
        assert_eq!(p.parsed::<f64>("--tolerance", 0.4).unwrap(), 0.4);
    }

    #[test]
    fn last_occurrence_of_a_repeated_flag_wins() {
        let p = parse(&SPEC, &argv(&["--tolerance", "0.1", "--tolerance", "0.2"])).expect("parse");
        assert_eq!(p.parsed::<f64>("--tolerance", 0.0).unwrap(), 0.2);
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(parse(&SPEC, &argv(&["--bogus"]))
            .unwrap_err()
            .contains("--bogus"));
        assert!(parse(&SPEC, &argv(&["--threads"]))
            .unwrap_err()
            .contains("--threads"));
        assert!(parse(&NO_POS, &argv(&["stray"]))
            .unwrap_err()
            .contains("positional"));
        let p = parse(&SPEC, &argv(&["--tolerance", "abc"])).expect("parse");
        assert!(p.parsed::<f64>("--tolerance", 0.0).is_err());
        assert!(p.parsed_list::<u64>("--tolerance", vec![]).is_err());
    }

    #[test]
    fn help_lists_every_subcommand_and_flag() {
        let help = render_help("figures — harness", &[SPEC, NO_POS]);
        assert!(help.contains("figures [targets...]"));
        assert!(help.contains("figures compare"));
        assert!(help.contains("COMPARE — perf gate"));
        assert!(help.contains("--threads a,b,c"));
        assert!(help.contains("--paper"));
        assert!(help.contains("allowed regression"));
    }
}
