//! The phase-decomposition benchmark behind `figures breakdown` and
//! `BENCH_breakdown.json`.
//!
//! Runs the four KV-comparison engines on the bank benchmark (medium
//! contention) and the YCSB-A update mix with the trace subsystem at
//! [`TraceLevel::Counters`], so every point's [`BreakdownSnapshot`] carries
//! the per-phase virtual-cycle decomposition (Log / Redo / Validate / SGL /
//! Drain / Fence) and the structured abort-cause histogram on top of the
//! completion-path and hardware-outcome counts the untraced breakdowns
//! already report.
//!
//! Phase cycles and causes only accumulate where the engine is
//! instrumented: Crafty's phases all report; the simulated-HTM baselines
//! report abort causes but no persistent phases; Non-durable reports
//! neither. Rendering skips empty sections, so the table stays honest
//! about what each engine actually measured.

use crafty_common::trace::{self, TraceConfig, TraceLevel};
use crafty_common::{AbortCause, BreakdownSnapshot, TxnPhase};
use crafty_stats::Json;
use crafty_workloads::{BankWorkload, Contention, Workload, YcsbMix, YcsbWorkload};

use crate::kvbench::KV_ENGINES;
use crate::{round2, run_point, HarnessConfig};

/// One (mix, engine) sample of the traced breakdown run.
#[derive(Clone, Debug)]
pub struct BreakdownRun {
    /// Workload label (`"bank (medium contention)"`, `"YCSB-A"`).
    pub mix: String,
    /// Engine legend label.
    pub engine: String,
    /// Worker thread count of the point.
    pub threads: usize,
    /// Transactions per second, for scale context next to the cycles.
    pub ops_per_sec: f64,
    /// The breakdown counters, including phase cycles and abort causes.
    pub snapshot: BreakdownSnapshot,
}

/// Runs the traced breakdown matrix: both workloads on all four engines
/// at the largest configured thread count, with tracing at `Counters`.
/// The previous trace level is restored before returning.
pub fn run_breakdown(cfg: &HarnessConfig) -> Vec<BreakdownRun> {
    let threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let previous = trace::level();
    trace::configure(TraceConfig::counters());
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(BankWorkload::paper(Contention::Medium, threads)),
        Box::new(YcsbWorkload::paper(YcsbMix::A)),
    ];
    let mut runs = Vec::new();
    for workload in &workloads {
        for kind in KV_ENGINES {
            let (m, snapshot, _) = run_point(workload.as_ref(), kind, threads, cfg);
            runs.push(BreakdownRun {
                mix: workload.name(),
                engine: kind.label().to_string(),
                threads,
                ops_per_sec: m.throughput(),
                snapshot,
            });
        }
    }
    trace::set_level(previous);
    runs
}

/// Renders the traced runs as the `BENCH_breakdown.json` artifact: one
/// point per (mix, engine) with the full phase-cycle and abort-cause
/// decomposition.
pub fn render_breakdown_json(cfg: &HarnessConfig, runs: &[BreakdownRun]) -> String {
    let mut arr = Vec::with_capacity(runs.len());
    for r in runs {
        let mut phases = Json::object();
        for phase in TxnPhase::ALL {
            phases = phases.with(phase.label(), Json::from(r.snapshot.phase_cycles(phase)));
        }
        let mut causes = Json::object();
        for cause in AbortCause::ALL {
            causes = causes.with(cause.label(), Json::from(r.snapshot.abort_cause(cause)));
        }
        arr.push(
            Json::object()
                .with("mix", Json::from(r.mix.as_str()))
                .with("engine", Json::from(r.engine.as_str()))
                .with("threads", Json::from(r.threads as u64))
                .with("ops_per_sec", Json::Float(round2(r.ops_per_sec)))
                .with("phase_cycles_ns", phases)
                .with("abort_causes", causes)
                .with(
                    "total_phase_cycles_ns",
                    Json::from(r.snapshot.total_phase_cycles()),
                )
                .with(
                    "total_abort_causes",
                    Json::from(r.snapshot.total_abort_causes()),
                )
                .with(
                    "writes_per_txn",
                    Json::Float(round2(r.snapshot.writes_per_txn())),
                ),
        );
    }
    Json::object()
        .with("benchmark", Json::from("traced phase breakdown"))
        .with("trace_level", Json::from(TraceLevel::Counters.label()))
        .with(
            "config",
            Json::object()
                .with("txns_per_thread", Json::from(cfg.txns_per_thread))
                .with("seed", Json::from(cfg.seed))
                .with("drain_latency_ns", Json::from(cfg.latency.drain_ns)),
        )
        .with("points", Json::Array(arr))
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::LatencyModel;
    use crafty_workloads::EngineKind;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            engines: KV_ENGINES.to_vec(),
            thread_counts: vec![2],
            txns_per_thread: 60,
            latency: LatencyModel::instant(),
            persistent_words: 1 << 21,
            seed: 7,
        }
    }

    #[test]
    fn breakdown_matrix_covers_both_mixes_on_all_four_engines() {
        let _serial = crate::TRACE_TEST_LOCK.lock().unwrap();
        let cfg = tiny();
        let runs = run_breakdown(&cfg);
        assert_eq!(runs.len(), 2 * KV_ENGINES.len());

        // Crafty is fully instrumented: its points must carry phase cycles.
        let crafty: Vec<_> = runs
            .iter()
            .filter(|r| r.engine == EngineKind::Crafty.label())
            .collect();
        assert_eq!(crafty.len(), 2);
        for r in crafty {
            assert!(
                r.snapshot.total_phase_cycles() > 0,
                "traced Crafty run on {} recorded no phase cycles",
                r.mix
            );
            assert!(
                r.snapshot.phase_cycles(TxnPhase::Log) > 0,
                "Crafty always runs the Log phase"
            );
        }
        // Non-durable has no persistent phases to trace.
        let nd = runs
            .iter()
            .find(|r| r.engine == EngineKind::NonDurable.label())
            .unwrap();
        assert_eq!(nd.snapshot.total_phase_cycles(), 0);

        let json = render_breakdown_json(&cfg, &runs);
        for key in [
            "\"phase_cycles_ns\"",
            "\"abort_causes\"",
            "\"writes_per_txn\"",
            "\"trace_level\"",
            "\"persistent-doomed\"",
        ] {
            assert!(json.contains(key), "missing {key} in breakdown artifact");
        }
    }
}
