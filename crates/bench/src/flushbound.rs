//! The `flushbound` hot-path variant: a microbenchmark that stresses the
//! persistence domain (`clwb`/`drain`) instead of transaction begin/commit.
//!
//! Each worker thread owns a disjoint persistent region and repeats the
//! canonical persist pattern — write a batch of lines, CLWB each line
//! (including duplicate flushes, which the queue must absorb in O(1)),
//! then drain — with no transactions anywhere. Throughput is reported in
//! persisted lines per second, so the number isolates exactly the code the
//! sharded, lock-free flush-queue refactor changed: with the old
//! `Mutex<Vec<LineId>>` queues this benchmark spends its time in the
//! per-flush `Vec::contains` scan and the queue mutex; with the sharded
//! domain it is bounded by the drain latency model and raw store
//! throughput.
//!
//! Each batch's lines are adjacent, which makes this the cleanest probe
//! of the batched drain pipeline too: every drain should coalesce its
//! [`LINES_PER_BATCH`] lines into a single ranged flush, so the reported
//! `flush_ranges` is the drain count and `lines_per_range` ≈ 16.

use std::sync::Arc;
use std::time::Instant;

use crafty_common::WORDS_PER_LINE;
use crafty_pmem::MemorySpace;
use crafty_stats::Json;

use crate::{round2, round4, HarnessConfig};

/// Lines written + flushed per drain by each thread. Chosen to look like a
/// mid-size transaction's write-back set (cf. Table 1's writes/txn).
pub const LINES_PER_BATCH: u64 = 16;

/// Duplicate flushes issued per line per batch (beyond the first), so the
/// dedup path is exercised, not just the enqueue path.
pub const DUPLICATE_FLUSHES: u64 = 2;

/// One (thread count) sample of the flush-bound microbenchmark.
#[derive(Clone, Debug)]
pub struct FlushboundPoint {
    /// Worker thread count.
    pub threads: usize,
    /// Batches (drains) executed per thread.
    pub batches_per_thread: u64,
    /// Total lines persisted across all threads.
    pub lines_persisted: u64,
    /// Total words actually copied to the persistent image.
    pub words_persisted: u64,
    /// Persisted lines per second across all threads.
    pub lines_per_sec: f64,
    /// Drains per second across all threads.
    pub drains_per_sec: f64,
    /// Measured write amplification (`words_persisted / line_words`);
    /// each batch stores one word per line, so the word-granular pipeline
    /// should report 1/8 here.
    pub write_amplification: f64,
    /// Ranged flushes the drains issued. Each batch's lines are adjacent,
    /// so the coalescing pipeline should issue one range per drain —
    /// `flush_ranges` ≪ `lines_persisted`.
    pub flush_ranges: u64,
    /// Average adjacent-line run length (`range_lines / flush_ranges`);
    /// should approach [`LINES_PER_BATCH`] here.
    pub lines_per_range: f64,
}

/// Runs the flush-bound microbenchmark at every configured thread count.
/// `txns_per_thread` is reused as the batch budget so `--txns` scales this
/// benchmark too.
pub fn run_flushbound(cfg: &HarnessConfig) -> Vec<FlushboundPoint> {
    cfg.thread_counts
        .iter()
        .map(|&threads| run_flushbound_point(cfg, threads))
        .collect()
}

fn run_flushbound_point(cfg: &HarnessConfig, threads: usize) -> FlushboundPoint {
    let mem = Arc::new(MemorySpace::new(cfg.pmem_config(threads)));
    let batches = cfg.txns_per_thread;
    let region_words = LINES_PER_BATCH * WORDS_PER_LINE;
    let regions: Vec<_> = (0..threads)
        .map(|_| mem.reserve_persistent(region_words))
        .collect();

    let start = Instant::now();
    crossbeam::scope(|s| {
        for (tid, &base) in regions.iter().enumerate() {
            let mem = Arc::clone(&mem);
            s.spawn(move |_| {
                for batch in 0..batches {
                    for l in 0..LINES_PER_BATCH {
                        let addr = base.add(l * WORDS_PER_LINE);
                        mem.write(addr, batch);
                        for dup in 0..=DUPLICATE_FLUSHES {
                            mem.clwb(tid, addr.add(dup % WORDS_PER_LINE));
                        }
                    }
                    mem.drain(tid);
                }
            });
        }
    })
    .expect("flushbound worker threads");
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let stats = mem.stats();
    let total_drains = threads as u64 * batches;
    FlushboundPoint {
        threads,
        batches_per_thread: batches,
        lines_persisted: stats.lines_persisted,
        words_persisted: stats.words_persisted,
        lines_per_sec: stats.lines_persisted as f64 / elapsed,
        drains_per_sec: total_drains as f64 / elapsed,
        write_amplification: stats.write_amplification(),
        flush_ranges: stats.flush_ranges,
        lines_per_range: stats.lines_per_range(),
    }
}

/// Renders the flush-bound samples as the `flushbound-candidate` JSON
/// artifact CI uploads, so the persistence domain's raw throughput and
/// write amplification are inspectable per run alongside the hotpath and
/// kv artifacts.
pub fn render_flushbound_json(cfg: &HarnessConfig, points: &[FlushboundPoint]) -> String {
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        arr.push(
            Json::object()
                .with("threads", Json::from(p.threads))
                .with("batches_per_thread", Json::from(p.batches_per_thread))
                .with("lines_persisted", Json::UInt(p.lines_persisted))
                .with("words_persisted", Json::UInt(p.words_persisted))
                .with("lines_per_sec", Json::Float(round2(p.lines_per_sec)))
                .with("drains_per_sec", Json::Float(round2(p.drains_per_sec)))
                .with(
                    "write_amplification",
                    Json::Float(round4(p.write_amplification)),
                )
                .with("flush_ranges", Json::UInt(p.flush_ranges))
                .with("lines_per_range", Json::Float(round4(p.lines_per_range))),
        );
    }
    Json::object()
        .with("benchmark", Json::from("flushbound (clwb/drain, no txns)"))
        .with(
            "config",
            Json::object()
                .with("batches_per_thread", Json::from(cfg.txns_per_thread))
                .with("lines_per_batch", Json::from(LINES_PER_BATCH))
                .with("drain_latency_ns", Json::from(cfg.latency.drain_ns))
                .with("clwb_word_ns", Json::from(cfg.latency.clwb_word_ns)),
        )
        .with("points", Json::Array(arr))
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::LatencyModel;
    use crafty_workloads::EngineKind;

    #[test]
    fn flushbound_persists_exactly_the_batched_lines() {
        let cfg = HarnessConfig {
            engines: vec![EngineKind::Crafty],
            thread_counts: vec![1, 2],
            txns_per_thread: 50,
            latency: LatencyModel::instant(),
            persistent_words: 1 << 18,
            seed: 1,
        };
        let points = run_flushbound(&cfg);
        assert_eq!(points.len(), 2);
        for p in &points {
            // Every batch drains exactly LINES_PER_BATCH distinct lines:
            // duplicate flushes must be absorbed by the O(1) dedup, never
            // persisted twice, and no line may be lost.
            assert_eq!(
                p.lines_persisted,
                p.threads as u64 * p.batches_per_thread * LINES_PER_BATCH,
                "{} threads: dedup must absorb duplicates without losing lines",
                p.threads
            );
            assert!(p.lines_per_sec > 0.0);
            assert!(p.drains_per_sec > 0.0);
            // One word stored per line per batch: the word-granular
            // pipeline persists exactly one word where a whole line would
            // have cost eight.
            assert_eq!(p.words_persisted, p.lines_persisted);
            assert!((p.write_amplification - 0.125).abs() < 1e-12);
            // Each batch's 16 lines are adjacent: exactly one ranged flush
            // per drain, so coalescing divides the flush count by 16.
            assert_eq!(
                p.flush_ranges,
                p.threads as u64 * p.batches_per_thread,
                "{} threads: adjacent batches must coalesce to one range per drain",
                p.threads
            );
            assert!((p.lines_per_range - LINES_PER_BATCH as f64).abs() < 1e-12);
        }
        let json = render_flushbound_json(&cfg, &points);
        assert!(json.contains("\"write_amplification\": 0.125"));
        assert!(json.contains("\"lines_per_sec\""));
        assert!(json.contains("\"flush_ranges\""));
    }
}
