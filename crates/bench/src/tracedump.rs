//! The event-trace dump behind `figures trace`: runs a short traced
//! workload at [`TraceLevel::Events`] and renders every thread's event
//! ring in the Chrome trace-event JSON format, loadable in
//! `chrome://tracing` or Perfetto.
//!
//! Every ring event becomes an instant (`"ph": "i"`) on its thread's
//! track, and each `txn-begin`/`txn-end` pair additionally synthesizes a
//! duration slice (`"ph": "X"`) spanning the transaction, so the timeline
//! shows transactions as bars with their aborts, log appends, drains, and
//! fences dotted inside. Timestamps are the trace clock's virtual
//! nanoseconds converted to the format's microseconds.
//!
//! The rings are flight recorders: a long run overwrites its oldest
//! events, and the dump reports per-thread drop counts in the metadata
//! rather than pretending the window was complete.

use std::sync::Arc;

use crafty_common::trace::{self, TraceConfig, TraceLevel};
use crafty_common::TraceEventKind;
use crafty_pmem::MemorySpace;
use crafty_stats::Json;
use crafty_workloads::{build_engine, run_mix, BankWorkload, Contention, EngineKind, Workload};

use crate::HarnessConfig;

/// Parameters of one trace capture.
#[derive(Clone, Debug)]
pub struct TraceDumpConfig {
    /// Engine to trace.
    pub engine: EngineKind,
    /// Worker threads.
    pub threads: usize,
    /// Transactions per thread — keep this near the ring capacity so the
    /// flight-recorder window covers the run.
    pub txns_per_thread: u64,
    /// Event-ring capacity per thread (rounded up to a power of two).
    pub ring_capacity: usize,
}

impl TraceDumpConfig {
    /// A capture small enough to read by eye: Crafty, two threads, a few
    /// hundred transactions inside a 4096-event window.
    pub fn quick() -> Self {
        TraceDumpConfig {
            engine: EngineKind::Crafty,
            threads: 2,
            txns_per_thread: 200,
            ring_capacity: 4096,
        }
    }
}

/// Runs the capture and returns the Chrome trace-event JSON. The trace
/// level is restored to its previous value before returning.
pub fn run_trace_dump(dump: &TraceDumpConfig, cfg: &HarnessConfig) -> String {
    let previous = trace::level();
    trace::configure(TraceConfig {
        level: TraceLevel::Events,
        ring_capacity: dump.ring_capacity,
    });
    trace::reset_rings();

    let mem = Arc::new(MemorySpace::new(cfg.pmem_config(dump.threads)));
    let engine = build_engine(dump.engine, &mem, dump.threads);
    let workload = BankWorkload::paper(Contention::Medium, dump.threads);
    let mix = workload.prepare(&mem);
    run_mix(
        engine.as_ref(),
        mix.as_ref(),
        dump.threads,
        dump.txns_per_thread,
        cfg.seed,
    );

    let mut events = Vec::new();
    let mut drops = Vec::new();
    for tid in 0..dump.threads {
        let snapshot = trace::ring_snapshot(tid);
        drops.push(
            Json::object()
                .with("tid", Json::from(tid as u64))
                .with("events", Json::from(snapshot.len() as u64))
                .with("dropped", Json::from(trace::ring_dropped(tid))),
        );
        // A transaction's slice spans its begin..end pair; an unmatched
        // begin (its end fell off the ring, or the txn was in flight at
        // capture) is dropped rather than drawn with an invented length.
        let mut open_begin: Option<u64> = None;
        for e in &snapshot {
            match e.kind {
                TraceEventKind::TxnBegin => open_begin = Some(e.t_ns),
                TraceEventKind::TxnEnd => {
                    if let Some(begin_ns) = open_begin.take() {
                        events.push(
                            Json::object()
                                .with("name", Json::from("txn"))
                                .with("ph", Json::from("X"))
                                .with("pid", Json::from(1u64))
                                .with("tid", Json::from(tid as u64))
                                .with("ts", Json::Float(begin_ns as f64 / 1e3))
                                .with(
                                    "dur",
                                    Json::Float((e.t_ns.saturating_sub(begin_ns)) as f64 / 1e3),
                                )
                                .with("args", Json::object().with("txn", Json::from(e.arg))),
                        );
                    }
                }
                kind => {
                    events.push(
                        Json::object()
                            .with("name", Json::from(kind.label()))
                            .with("ph", Json::from("i"))
                            .with("s", Json::from("t"))
                            .with("pid", Json::from(1u64))
                            .with("tid", Json::from(tid as u64))
                            .with("ts", Json::Float(e.t_ns as f64 / 1e3))
                            .with("args", Json::object().with("arg", Json::from(e.arg))),
                    );
                }
            }
        }
    }
    trace::set_level(previous);

    Json::object()
        .with("traceEvents", Json::Array(events))
        .with("displayTimeUnit", Json::from("ns"))
        .with(
            "otherData",
            Json::object()
                .with("engine", Json::from(dump.engine.label()))
                .with("workload", Json::from("bank (medium contention)"))
                .with("clock", Json::from("virtual ns since trace epoch"))
                .with("rings", Json::Array(drops)),
        )
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::LatencyModel;

    #[test]
    fn dump_contains_slices_and_instants_for_every_thread() {
        let _serial = crate::TRACE_TEST_LOCK.lock().unwrap();
        let dump = TraceDumpConfig {
            engine: EngineKind::Crafty,
            threads: 2,
            txns_per_thread: 40,
            ring_capacity: 1 << 12,
        };
        let cfg = HarnessConfig {
            engines: vec![EngineKind::Crafty],
            thread_counts: vec![2],
            txns_per_thread: 40,
            latency: LatencyModel::instant(),
            persistent_words: 1 << 20,
            seed: 11,
        };
        let json = run_trace_dump(&dump, &cfg);
        let doc = Json::parse(&json).expect("dump parses as JSON");
        let events = doc
            .get("traceEvents")
            .map(Json::items)
            .unwrap_or(&[])
            .to_vec();
        assert!(!events.is_empty());
        // Both threads produced transaction slices.
        for tid in 0..2u64 {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("X")
                        && e.get("tid").and_then(Json::as_u64) == Some(tid)
                }),
                "no txn slice for tid {tid}"
            );
        }
        // The lifecycle instants made it through (Crafty logs every txn).
        for name in ["undo-append", "htm-attempt"] {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("i")
                        && e.get("name").and_then(Json::as_str) == Some(name)
                }),
                "no `{name}` instant in the dump"
            );
        }
        // Ring metadata is present for both threads.
        let rings = doc
            .get("otherData")
            .and_then(|o| o.get("rings"))
            .map(Json::items)
            .unwrap_or(&[])
            .len();
        assert_eq!(rings, 2);
    }
}
