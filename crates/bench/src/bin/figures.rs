//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [targets...] [--paper] [--latency-100] [--threads a,b,c] [--txns N] [--csv DIR]
//!         [--json-out PATH]
//!
//! targets: fig6 fig7 fig8 table1 breakdowns fig22 fig23 fig24 hotpath
//!          flushbound kv all   (default: fig6 fig7 table1)
//!
//! figures compare --candidate PATH [--baseline BENCH_hotpath.json]
//!         [--suite hotpath|kv] [--tolerance 0.40] [--engine Crafty]
//!         [--reference Non-durable] [--threads 1] [--absolute]
//!
//! figures torture [--suite bank|kv|storm|recovery|all] [--seed N]
//!         [--txns N] [--steps N] [--crash-step N]
//!
//! figures --help   prints the full usage, including the kv (YCSB A/B/C/E
//!                  plus the batched A+gc group-commit mode) and flushbound
//!                  suites, the compare perf-gate subcommand, and the
//!                  torture fault-injection subcommand
//! ```
//!
//! The `hotpath` target runs the tracked bank benchmark and writes the
//! machine-readable `BENCH_hotpath.json` artifact (see
//! [`crafty_bench::hotpath`]); `--json-out` overrides its output path. The
//! `flushbound` target stresses the persistence domain (clwb/drain) with no
//! transactions (see [`crafty_bench::flushbound`]) and writes
//! `BENCH_flushbound.json`. The `kv` target runs the YCSB-style mixes —
//! A/B/C/E plus the batched-update `A+gc` group-commit mode — over the
//! durable sharded `crafty-kv` store on Crafty, Non-durable, NV-HTM,
//! and DudeTM, and writes `BENCH_kv.json` (see [`crafty_bench::kvbench`]).
//! `--json-out` overrides the path of the *single* JSON-writing target
//! requested (with several in one invocation, hotpath wins and the others
//! keep their defaults). All three artifacts report the measured
//! write-amplification ratio (`words_persisted / line_words_persisted`)
//! of the word-granular persistence pipeline and the drain-coalescing
//! counters (`flush_ranges`, `lines_per_range`) of the batched drain
//! pipeline.
//!
//! `compare` is the CI perf-regression gate: it reads two JSON artifacts
//! (the committed baseline and a fresh candidate run) and fails (exit 1)
//! if the candidate's Crafty throughput regressed by more than the
//! tolerance. By default the compared metric is Crafty's throughput
//! *normalized to Non-durable in the same artifact*, which cancels
//! machine-speed differences between the baseline host and the CI runner;
//! `--absolute` compares raw ops/s instead (only meaningful on the same
//! host). `--suite kv` gates the KV artifact instead of the hotpath one:
//! the normalized ratio is checked *per YCSB mix*, and any mix regressing
//! beyond the tolerance fails the gate. To intentionally move a baseline,
//! regenerate it (`cargo run --release -p crafty-bench --bin figures --
//! hotpath`, or `kv --threads 1 --txns 1000` for the KV baseline) and
//! commit the new JSON alongside the change that shifted performance.
//!
//! `torture` drives the deterministic fault-injection harness
//! (`crafty-torture`): it enumerates crash points over the suites'
//! workloads (exhaustively with `--steps 0`, the default; via seeded
//! stratified sampling with `--steps N`), audits every crash image
//! (recovery, clean logs, idempotence, prefix-of-commit-order state), and
//! exits non-zero when any invariant is violated. Every reported failure
//! carries a `(seed, step)` pair; replay it exactly with
//! `figures -- torture --suite S --seed SEED --crash-step STEP`. The bank
//! suite also self-tests the auditor by injecting a violation and
//! requiring it to be caught.
//!
//! Every figure is printed as the table of normalized throughputs behind
//! the paper's plot (one row per thread count, one column per engine,
//! normalized to single-thread Non-durable). `--csv DIR` additionally
//! writes one CSV per figure. `--paper` uses the full thread sweep
//! (1–16) and a larger transaction budget; the default "quick" scale keeps
//! the whole run in the minutes range on a laptop.

use std::collections::BTreeSet;

use crafty_bench::{
    render_flushbound_json, render_hotpath_json, render_kv_json, run_breakdowns, run_figure,
    run_flushbound, run_hotpath, run_kv, writes_per_txn, HarnessConfig,
};
use crafty_pmem::LatencyModel;
use crafty_stats::{
    render_breakdown, render_figure, render_figure_csv, render_writes_per_txn_row, Json,
};
use crafty_workloads::{
    BankWorkload, BtreeVariant, BtreeWorkload, Contention, StampKernel, StampWorkload, Workload,
};

struct Options {
    targets: BTreeSet<String>,
    cfg: HarnessConfig,
    csv_dir: Option<String>,
    json_out: Option<String>,
}

/// Prints the CLI usage (also the `--help` output). Kept in sync with the
/// module docs above; covers every target, including the kv and flushbound
/// suites and the `compare` perf-gate subcommand.
fn print_usage() {
    println!(
        "\
figures — regenerate the paper's tables/figures and the benchmark artifacts

USAGE:
  figures [targets...] [--paper] [--latency-100] [--threads a,b,c] [--txns N]
          [--csv DIR] [--json-out PATH]
  figures compare --candidate PATH [--baseline PATH] [--suite hotpath|kv]
          [--tolerance 0.40] [--engine Crafty] [--reference Non-durable]
          [--threads 1] [--absolute]
  figures torture [--suite bank|kv|storm|recovery|all] [--seed N] [--txns N]
          [--steps N] [--crash-step N]

TARGETS (default: fig6 fig7 table1):
  fig6 fig7 fig8     paper figures (bank / B-tree / STAMP throughput)
  table1             average persistent writes per transaction
  breakdowns         per-engine completion/abort breakdowns (Figures 9-21)
  fig22 fig23 fig24  appendix reruns at 100 ns drain latency
  hotpath            tracked bank benchmark -> BENCH_hotpath.json
  flushbound         clwb/drain microbenchmark (no txns) -> BENCH_flushbound.json
  kv                 YCSB mixes (A/B/C/E + batched A+gc) over crafty-kv
                     -> BENCH_kv.json
  all                everything above

The hotpath/flushbound/kv artifacts carry throughput, the measured
write-amplification ratio (words_persisted / line_words_persisted), and the
drain-coalescing counters (flush_ranges, lines_per_range). `compare` is the
CI perf-regression gate: it checks a fresh candidate artifact against the
committed baseline (per YCSB mix with --suite kv) and exits non-zero on a
regression; to move a baseline intentionally, regenerate it and commit the
new JSON with the change.

`torture` runs the deterministic fault-injection harness: crash-point
enumeration over a bank and a KV workload with a full recovery audit per
crash image, a crash-during-recovery convergence sweep, and an abort-storm
liveness/durability check. --steps 0 (default) enumerates every
persistence step of the workload; --steps N samples N stratified points.
Failures print a (seed, step) pair — replay one exactly with
  figures -- torture --suite S --seed SEED --crash-step STEP"
    );
}

fn parse_args() -> Options {
    let mut targets = BTreeSet::new();
    let mut paper = false;
    let mut latency100 = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut txns: Option<u64> = None;
    let mut csv_dir = None;
    let mut json_out = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" | "help" => {
                print_usage();
                std::process::exit(0);
            }
            "--json-out" => json_out = Some(args.next().expect("--json-out needs a path")),
            "--paper" => paper = true,
            "--latency-100" => latency100 = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a comma-separated list");
                threads = Some(
                    v.split(',')
                        .map(|s| s.trim().parse().expect("invalid thread count"))
                        .collect(),
                );
            }
            "--txns" => {
                txns = Some(
                    args.next()
                        .expect("--txns needs a number")
                        .parse()
                        .expect("invalid transaction count"),
                );
            }
            "--csv" => csv_dir = Some(args.next().expect("--csv needs a directory")),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other} (see `figures --help`)");
                std::process::exit(2);
            }
            target => {
                targets.insert(target.to_string());
            }
        }
    }
    if targets.is_empty() {
        for t in ["fig6", "fig7", "table1"] {
            targets.insert(t.to_string());
        }
    }
    if targets.contains("all") {
        for t in [
            "fig6",
            "fig7",
            "fig8",
            "table1",
            "breakdowns",
            "fig22",
            "fig23",
            "fig24",
            "hotpath",
            "flushbound",
            "kv",
        ] {
            targets.insert(t.to_string());
        }
    }
    let mut cfg = if paper {
        HarnessConfig::paper()
    } else {
        HarnessConfig::quick()
    };
    if latency100 {
        cfg = cfg.with_latency(LatencyModel::nvm_100ns());
    }
    if let Some(t) = threads {
        cfg = cfg.with_thread_counts(t);
    }
    if let Some(t) = txns {
        cfg = cfg.with_txns_per_thread(t);
    }
    Options {
        targets,
        cfg,
        csv_dir,
        json_out,
    }
}

fn emit(figure_id: &str, workload: &dyn Workload, cfg: &HarnessConfig, csv_dir: &Option<String>) {
    let figure = run_figure(workload, cfg);
    println!("\n== {figure_id}: {} ==", workload.name());
    print!("{}", render_figure(&figure, "Non-durable"));
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv directory");
        let path = format!(
            "{dir}/{}.csv",
            figure_id.replace([' ', '(', ')'], "_").to_lowercase()
        );
        std::fs::write(&path, render_figure_csv(&figure, "Non-durable")).expect("write csv");
        println!("[csv written to {path}]");
    }
}

fn bank_workloads(max_threads: usize) -> Vec<(String, BankWorkload)> {
    [Contention::High, Contention::Medium, Contention::None]
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            (
                format!("fig6{}", (b'a' + i as u8) as char),
                BankWorkload::paper(c, max_threads),
            )
        })
        .collect()
}

/// The `compare` subcommand: the CI perf-regression gate. Exits the
/// process — 0 when the candidate is within tolerance of the baseline,
/// 1 on a regression, 2 on usage or artifact errors.
///
/// `--suite hotpath` (the default) checks one metric: the engine's
/// throughput (normalized to the reference engine unless `--absolute`) at
/// the given thread count. `--suite kv` checks the same normalized metric
/// once *per YCSB mix* present in the baseline; any mix regressing beyond
/// the tolerance fails the gate.
fn run_compare(args: &[String]) -> ! {
    let mut suite = "hotpath".to_string();
    let mut baseline: Option<String> = None;
    let mut candidate: Option<String> = None;
    let mut tolerance = 0.40f64;
    let mut engine = "Crafty".to_string();
    let mut reference = "Non-durable".to_string();
    let mut threads = 1u64;
    let mut absolute = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--suite" => suite = value("--suite"),
            "--baseline" => baseline = Some(value("--baseline")),
            "--candidate" => candidate = Some(value("--candidate")),
            "--tolerance" => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("--tolerance needs a fraction like 0.40");
                    std::process::exit(2);
                })
            }
            "--engine" => engine = value("--engine"),
            "--reference" => reference = value("--reference"),
            "--threads" => {
                threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                })
            }
            "--absolute" => absolute = true,
            other => {
                eprintln!("unknown compare flag {other}");
                std::process::exit(2);
            }
        }
    }
    if suite != "hotpath" && suite != "kv" {
        eprintln!("--suite must be `hotpath` or `kv`, got `{suite}`");
        std::process::exit(2);
    }
    let baseline = baseline.unwrap_or_else(|| {
        if suite == "kv" {
            "BENCH_kv.json".to_string()
        } else {
            "BENCH_hotpath.json".to_string()
        }
    });
    let candidate = candidate.unwrap_or_else(|| {
        eprintln!("compare requires --candidate PATH (a fresh {suite} JSON artifact)");
        std::process::exit(2);
    });

    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    // Looks up one point's ops/s by engine, thread count, and (for the kv
    // suite) mix label.
    let ops = |doc: &Json, path: &str, engine: &str, mix: Option<&str>| -> f64 {
        doc.get("points")
            .map(Json::items)
            .unwrap_or(&[])
            .iter()
            .find(|p| {
                p.get("engine").and_then(Json::as_str) == Some(engine)
                    && p.get("threads").and_then(Json::as_u64) == Some(threads)
                    && (mix.is_none() || p.get("mix").and_then(Json::as_str) == mix)
            })
            .and_then(|p| p.get("ops_per_sec"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                let mix_note = mix.map(|m| format!(" for mix {m}")).unwrap_or_default();
                eprintln!("{path}: no `{engine}` point at {threads} thread(s){mix_note}");
                std::process::exit(2);
            })
    };

    let base_doc = load(&baseline);
    let cand_doc = load(&candidate);

    // The (label, mix) cells to gate: one for the hotpath suite, one per
    // distinct baseline mix for the kv suite.
    let cells: Vec<(String, Option<String>)> = if suite == "kv" {
        let mut mixes: Vec<String> = Vec::new();
        for p in base_doc.get("points").map(Json::items).unwrap_or(&[]) {
            if let Some(m) = p.get("mix").and_then(Json::as_str) {
                if !mixes.iter().any(|seen| seen == m) {
                    mixes.push(m.to_string());
                }
            }
        }
        if mixes.is_empty() {
            eprintln!("{baseline}: no kv mixes found in baseline points");
            std::process::exit(2);
        }
        mixes
            .into_iter()
            .map(|m| (format!("YCSB-{m}"), Some(m)))
            .collect()
    } else {
        vec![("hotpath".to_string(), None)]
    };

    let metric_name = if absolute {
        format!("{engine} ops/s at {threads} thread(s)")
    } else {
        format!("{engine}/{reference} throughput ratio at {threads} thread(s)")
    };
    println!("perf-regression gate [{suite}]: {metric_name}");
    let mut failed = false;
    for (label, mix) in &cells {
        let mix = mix.as_deref();
        let (base_metric, cand_metric) = if absolute {
            (
                ops(&base_doc, &baseline, &engine, mix),
                ops(&cand_doc, &candidate, &engine, mix),
            )
        } else {
            // Normalizing to a reference engine measured in the same
            // artifact cancels host-speed differences between the baseline
            // machine and the CI runner.
            (
                ops(&base_doc, &baseline, &engine, mix)
                    / ops(&base_doc, &baseline, &reference, mix),
                ops(&cand_doc, &candidate, &engine, mix)
                    / ops(&cand_doc, &candidate, &reference, mix),
            )
        };
        let floor = base_metric * (1.0 - tolerance);
        let verdict = if cand_metric >= floor {
            "ok"
        } else {
            failed = true;
            "REGRESSED"
        };
        println!(
            "  {label:<10} baseline {base_metric:>8.4}  candidate {cand_metric:>8.4}  \
             floor {floor:>8.4}  {verdict}"
        );
    }
    if !failed {
        println!("PASS: candidate is within tolerance of the committed baseline.");
        std::process::exit(0);
    }
    println!(
        "FAIL: candidate regressed more than {:.0}% below the baseline.",
        tolerance * 100.0
    );
    let refresh = if suite == "kv" {
        "kv --threads 1 --txns 1000"
    } else {
        "hotpath"
    };
    println!(
        "If this shift is intentional, refresh the baseline with\n  \
         cargo run --release -p crafty-bench --bin figures -- {refresh}\n\
         and commit the regenerated {baseline} with your change."
    );
    std::process::exit(1);
}

/// The `torture` subcommand: the deterministic fault-injection harness.
/// Exits the process — 0 when every audited crash image satisfied every
/// invariant (and the auditor self-test caught its injected violation),
/// 1 on any violation, 2 on usage errors.
fn run_torture(args: &[String]) -> ! {
    use crafty_torture::{
        injected_violation_is_caught, run_bank_torture, run_kv_torture, run_recovery_torture,
        run_storm_torture, TortureConfig, TortureReport,
    };

    let mut suite = "all".to_string();
    let mut cfg = TortureConfig::quick(1);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        let parse = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} needs a number, got `{v}`");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--suite" => suite = value("--suite"),
            "--seed" => cfg.seed = parse("--seed", value("--seed")),
            "--txns" => cfg.txns = parse("--txns", value("--txns")),
            "--steps" => cfg.max_crash_points = parse("--steps", value("--steps")),
            "--crash-step" => {
                cfg.crash_step = Some(parse("--crash-step", value("--crash-step")));
            }
            other => {
                eprintln!("unknown torture flag {other} (see `figures --help`)");
                std::process::exit(2);
            }
        }
    }
    let known = ["bank", "kv", "storm", "recovery", "all"];
    if !known.contains(&suite.as_str()) {
        eprintln!("--suite must be one of {known:?}, got `{suite}`");
        std::process::exit(2);
    }
    let wants = |s: &str| suite == s || suite == "all";

    println!(
        "torture harness — seed {}, {} txns, {} crash points{}",
        cfg.seed,
        cfg.txns,
        if cfg.max_crash_points == 0 {
            "exhaustive".to_string()
        } else {
            format!("{} sampled", cfg.max_crash_points)
        },
        cfg.crash_step
            .map(|s| format!(", pinned to step {s}"))
            .unwrap_or_default(),
    );
    let mut failed = false;
    let show = |report: &TortureReport| -> bool {
        if report.total_steps == 0 {
            // The storm suite audits liveness + durability, not crash points.
            println!(
                "\n[{}] liveness + durability audit (no crash-point enumeration, seed {})",
                report.suite, report.seed,
            );
        } else {
            println!(
                "\n[{}] {} crash points audited (steps {}..={} of the run, seed {})",
                report.suite,
                report.crash_points_tested,
                report.setup_steps + 1,
                report.total_steps,
                report.seed,
            );
        }
        if report.ok() {
            println!("  ok — every crash image satisfied every invariant");
        } else {
            for f in &report.failures {
                println!("  VIOLATION {f}");
                println!(
                    "    replay: figures -- torture --suite {} --seed {} --txns {} \
                     --crash-step {}",
                    report.suite, f.seed, cfg.txns, f.step
                );
            }
        }
        !report.ok()
    };

    if wants("bank") {
        failed |= show(&run_bank_torture(&cfg));
        match injected_violation_is_caught(&cfg) {
            Ok(f) => println!("  self-test: injected violation was caught — {f}"),
            Err(e) => {
                failed = true;
                println!("  SELF-TEST FAILED: {e}");
            }
        }
    }
    if wants("kv") {
        failed |= show(&run_kv_torture(&cfg));
    }
    if wants("recovery") {
        failed |= show(&run_recovery_torture(&cfg));
    }
    if wants("storm") {
        failed |= show(&run_storm_torture(&cfg));
    }

    if failed {
        println!("\nFAIL: the torture harness found invariant violations.");
        std::process::exit(1);
    }
    println!("\nPASS: no invariant violations found.");
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("compare") {
        run_compare(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("torture") {
        run_torture(&argv[1..]);
    }
    let options = parse_args();
    let cfg = &options.cfg;
    let max_threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let latency_note = format!("{} ns drain latency", cfg.latency.drain_ns);
    println!("crafty figure harness — engines: {:?}", cfg.engines.len());
    println!(
        "thread counts {:?}, {} transactions/thread, {latency_note}",
        cfg.thread_counts, cfg.txns_per_thread
    );

    let has = |t: &str| options.targets.contains(t);

    if has("fig6") {
        for (id, w) in bank_workloads(max_threads) {
            emit(&id, &w, cfg, &options.csv_dir);
        }
    }
    if has("fig7") {
        emit(
            "fig7a",
            &BtreeWorkload::paper(BtreeVariant::InsertOnly),
            cfg,
            &options.csv_dir,
        );
        emit(
            "fig7b",
            &BtreeWorkload::paper(BtreeVariant::Mixed),
            cfg,
            &options.csv_dir,
        );
    }
    if has("fig8") {
        for (i, kernel) in StampKernel::ALL.iter().enumerate() {
            let id = format!("fig8{}", (b'a' + i as u8) as char);
            emit(&id, &StampWorkload::new(*kernel), cfg, &options.csv_dir);
        }
    }
    if has("table1") {
        println!("\n== Table 1: average writes per persistent transaction ==");
        let threads = *cfg.thread_counts.first().unwrap_or(&1);
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for (name, w) in bank_workloads(max_threads) {
            let _ = name;
            rows.push((w.name(), writes_per_txn(&w, threads, cfg), 10.0));
        }
        for variant in [BtreeVariant::InsertOnly, BtreeVariant::Mixed] {
            let w = BtreeWorkload::paper(variant);
            let expected = match variant {
                BtreeVariant::InsertOnly => 14.0,
                BtreeVariant::Mixed => 13.3,
            };
            rows.push((w.name(), writes_per_txn(&w, threads, cfg), expected));
        }
        for kernel in StampKernel::ALL {
            let w = StampWorkload::new(kernel);
            rows.push((
                w.name(),
                writes_per_txn(&w, threads, cfg),
                kernel.paper_writes_per_txn(),
            ));
        }
        println!("{:<28}{:>12}{:>12}", "benchmark", "measured", "paper");
        for (name, measured, paper) in rows {
            println!("{name:<28}{measured:>12.1}{paper:>12.1}");
            let _ = render_writes_per_txn_row(&name, &[(threads, measured)]);
        }
    }
    if has("breakdowns") {
        let threads = max_threads;
        println!("\n== Figures 9–21: transaction breakdowns at {threads} threads ==");
        let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
        for (_, w) in bank_workloads(max_threads) {
            workloads.push(Box::new(w));
        }
        workloads.push(Box::new(BtreeWorkload::paper(BtreeVariant::InsertOnly)));
        workloads.push(Box::new(BtreeWorkload::paper(BtreeVariant::Mixed)));
        for kernel in StampKernel::ALL {
            workloads.push(Box::new(StampWorkload::new(kernel)));
        }
        for w in &workloads {
            println!("\n-- {} --", w.name());
            for (engine, snapshot) in run_breakdowns(w.as_ref(), threads, cfg) {
                print!("{}", render_breakdown(&engine, &snapshot));
            }
        }
    }
    if has("hotpath") {
        let path = options.json_out.as_deref().unwrap_or("BENCH_hotpath.json");
        println!("\n== hotpath: tracked bank benchmark ==");
        let points = run_hotpath(cfg);
        for p in &points {
            let aborts: u64 = p
                .hw_outcomes
                .iter()
                .filter(|(label, _)| *label != "commit")
                .map(|(_, c)| c)
                .sum();
            println!(
                "{:<20} {:>2} thr {:>12.0} ops/s  {:>8} hw aborts  w-amp {:.3}  \
                 {:>7} ranges / {:>7} lines ({:.2}/rng)",
                p.engine,
                p.threads,
                p.ops_per_sec,
                aborts,
                p.write_amplification,
                p.flush_ranges,
                p.lines_persisted,
                p.lines_per_range
            );
        }
        std::fs::write(path, render_hotpath_json(cfg, &points)).expect("write hotpath json");
        println!("[json written to {path}]");
    }
    if has("flushbound") {
        // `--json-out` names the hotpath or kv artifact when those targets
        // run in the same invocation; flushbound then keeps its default.
        let path = if has("hotpath") || has("kv") {
            "BENCH_flushbound.json"
        } else {
            options
                .json_out
                .as_deref()
                .unwrap_or("BENCH_flushbound.json")
        };
        println!("\n== flushbound: persistence-domain microbenchmark ==");
        println!(
            "{:>3}  {:>14}  {:>14}  {:>12}  {:>12}  {:>6}  {:>10}  {:>9}",
            "thr",
            "lines/s",
            "drains/s",
            "lines total",
            "words total",
            "w-amp",
            "ranges",
            "lines/rng"
        );
        let points = run_flushbound(cfg);
        for p in &points {
            println!(
                "{:>3}  {:>14.0}  {:>14.0}  {:>12}  {:>12}  {:>6.3}  {:>10}  {:>9.2}",
                p.threads,
                p.lines_per_sec,
                p.drains_per_sec,
                p.lines_persisted,
                p.words_persisted,
                p.write_amplification,
                p.flush_ranges,
                p.lines_per_range
            );
        }
        std::fs::write(path, render_flushbound_json(cfg, &points)).expect("write flushbound json");
        println!("[json written to {path}]");
    }
    if has("kv") {
        // `--json-out` names the hotpath artifact when both targets run in
        // one invocation; kv then keeps its default path.
        let path = if has("hotpath") {
            "BENCH_kv.json"
        } else {
            options.json_out.as_deref().unwrap_or("BENCH_kv.json")
        };
        println!("\n== kv: YCSB mixes over the durable sharded store ==");
        let points = run_kv(cfg);
        for p in &points {
            println!(
                "YCSB-{:<4} {:<14} {:>2} thr {:>12.0} ops/s  w-amp {:.3}  \
                 {:>6} ranges / {:>6} lines ({:.2}/rng)",
                p.mix,
                p.engine,
                p.threads,
                p.ops_per_sec,
                p.write_amplification,
                p.flush_ranges,
                p.lines_persisted,
                p.lines_per_range
            );
        }
        std::fs::write(path, render_kv_json(cfg, &points)).expect("write kv json");
        println!("[json written to {path}]");
    }
    // Appendix figures: the same benchmarks at 100 ns drain latency.
    let appendix = cfg.clone().with_latency(LatencyModel::nvm_100ns());
    if has("fig22") {
        for (id, w) in bank_workloads(max_threads) {
            emit(
                &id.replace("fig6", "fig22"),
                &w,
                &appendix,
                &options.csv_dir,
            );
        }
    }
    if has("fig23") {
        emit(
            "fig23a",
            &BtreeWorkload::paper(BtreeVariant::InsertOnly),
            &appendix,
            &options.csv_dir,
        );
        emit(
            "fig23b",
            &BtreeWorkload::paper(BtreeVariant::Mixed),
            &appendix,
            &options.csv_dir,
        );
    }
    if has("fig24") {
        for (i, kernel) in StampKernel::ALL.iter().enumerate() {
            let id = format!("fig24{}", (b'a' + i as u8) as char);
            emit(
                &id,
                &StampWorkload::new(*kernel),
                &appendix,
                &options.csv_dir,
            );
        }
    }
    println!("\ndone.");
}
