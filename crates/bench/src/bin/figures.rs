//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [targets...] [--paper] [--latency-100] [--threads a,b,c] [--txns N] [--csv DIR]
//!         [--json-out PATH] [--trace off|counters|events]
//!
//! targets: fig6 fig7 fig8 table1 breakdowns breakdown fig22 fig23 fig24
//!          hotpath flushbound kv all   (default: fig6 fig7 table1 breakdown)
//!
//! figures compare --candidate PATH [--baseline BENCH_hotpath.json]
//!         [--suite hotpath|kv] [--tolerance 0.40] [--engine Crafty]
//!         [--reference Non-durable] [--threads 1] [--absolute]
//!
//! figures torture [--suite bank|fallback|kv|storm|recovery|all] [--seed N]
//!         [--txns N] [--steps N] [--crash-step N]
//!
//! figures contention [--threads a,b,c] [--txns N] [--accounts N]
//!         [--theta F] [--seed N] [--json-out PATH]
//!
//! figures kvserve [--rates a,b,c] [--ops N] [--engines e,e] [--connections N]
//!         [--workers N] [--records N] [--read-pct N] [--fixed] [--seed N]
//!         [--drain-ns N] [--json-out PATH]
//!
//! figures breakdown [--threads N] [--txns N] [--json-out PATH]
//!
//! figures trace [--out trace.json] [--threads N] [--txns N] [--ring N]
//!
//! figures --help   prints the full usage, generated from the same flag
//!                  table the parser validates against
//! ```
//!
//! Every subcommand's flags are declared once in [`SPECS`] and parsed by
//! the shared [`crafty_bench::cli`] helper; `--help` renders from the same
//! table, so usage text and parser cannot drift apart.
//!
//! The `hotpath` target runs the tracked bank benchmark and writes the
//! machine-readable `BENCH_hotpath.json` artifact (see
//! [`crafty_bench::hotpath`]); `--json-out` overrides its output path. The
//! `flushbound` target stresses the persistence domain (clwb/drain) with no
//! transactions (see [`crafty_bench::flushbound`]) and writes
//! `BENCH_flushbound.json`. The `kv` target runs the YCSB-style mixes —
//! A/B/C/E plus the batched-update `A+gc` group-commit mode — over the
//! durable sharded `crafty-kv` store on Crafty, Non-durable, NV-HTM,
//! and DudeTM, and writes `BENCH_kv.json` (see [`crafty_bench::kvbench`]).
//! `--json-out` overrides the path of the *single* JSON-writing target
//! requested (with several in one invocation, hotpath wins and the others
//! keep their defaults). All three artifacts report the measured
//! write-amplification ratio (`words_persisted / line_words_persisted`)
//! of the word-granular persistence pipeline and the drain-coalescing
//! counters (`flush_ranges`, `lines_per_range`) of the batched drain
//! pipeline.
//!
//! `compare` is the CI perf-regression gate: it reads two JSON artifacts
//! (the committed baseline and a fresh candidate run) and fails (exit 1)
//! if the candidate's Crafty throughput regressed by more than the
//! tolerance. By default the compared metric is Crafty's throughput
//! *normalized to Non-durable in the same artifact*, which cancels
//! machine-speed differences between the baseline host and the CI runner;
//! `--absolute` compares raw ops/s instead (only meaningful on the same
//! host). `--suite kv` gates the KV artifact instead of the hotpath one:
//! the normalized ratio is checked *per YCSB mix*, and any mix regressing
//! beyond the tolerance fails the gate. To intentionally move a baseline,
//! regenerate it (`cargo run --release -p crafty-bench --bin figures --
//! hotpath`, or `kv --threads 1 --txns 1000` for the KV baseline) and
//! commit the new JSON alongside the change that shifted performance.
//!
//! `torture` drives the deterministic fault-injection harness
//! (`crafty-torture`): it enumerates crash points over the suites'
//! workloads (exhaustively with `--steps 0`, the default; via seeded
//! stratified sampling with `--steps N`), audits every crash image
//! (recovery, clean logs, idempotence, prefix-of-commit-order state), and
//! exits non-zero when any invariant is violated. Every reported failure
//! carries a `(seed, step)` pair; replay it exactly with
//! `figures -- torture --suite S --seed SEED --crash-step STEP`. The bank
//! suite also self-tests the auditor by injecting a violation and
//! requiring it to be caught. The `fallback` suite forces every
//! transaction through the per-line software fallback so crash points
//! land inside lock-hold windows, and boots each recovered image into a
//! second life that must keep running (no stuck lock survives a reboot).
//!
//! `contention` compares the two software-fallback policies head to head:
//! every transaction is forced through the fallback and a zipfian-skewed
//! transfer mix runs at each requested thread count under both the single
//! global lock and the per-line write locks, with a conservation-of-money
//! audit per point. It writes `BENCH_contention.json`; under the SGL the
//! throughput column flatlines as threads are added, under per-line it
//! scales — that separation is the artifact's point.
//!
//! `kvserve` boots the networked KV front-end (`crafty-server`) on
//! loopback and drives it **open-loop** at a sweep of arrival rates,
//! reporting p50/p99/p999 latency per engine per rate (measured from
//! intended send times, so queueing delay and coordinated omission stay
//! visible) and writing `BENCH_kvserve.json` (see
//! [`crafty_bench::kvserve`]). The default sweep compares Non-durable,
//! per-transaction-durable Crafty, and Crafty behind the server's
//! group-commit durability window.
//!
//! `breakdown` runs the *traced* phase decomposition: the bank (medium
//! contention) benchmark and the YCSB-A mix on the four KV-comparison
//! engines with the trace subsystem at `counters` level, printing each
//! engine's per-phase virtual-cycle table and abort-cause histogram and
//! writing `BENCH_breakdown.json` (see [`crafty_bench::breakdown`]). The
//! same section rides along with every default (no-target) run. `trace`
//! captures one run at the `events` level and dumps every thread's event
//! ring as chrome://tracing JSON (see [`crafty_bench::tracedump`]). The
//! figure targets additionally accept `--trace LEVEL` to run with the
//! tracer armed; the `compare` gate against the committed baseline is what
//! pins the default `off` level's overhead at zero.
//!
//! Every figure is printed as the table of normalized throughputs behind
//! the paper's plot (one row per thread count, one column per engine,
//! normalized to single-thread Non-durable). `--csv DIR` additionally
//! writes one CSV per figure. `--paper` uses the full thread sweep
//! (1–16) and a larger transaction budget; the default "quick" scale keeps
//! the whole run in the minutes range on a laptop.

use std::collections::BTreeSet;

use crafty_bench::{
    cli, render_breakdown_json, render_flushbound_json, render_hotpath_json, render_kv_json,
    render_kvserve_json, render_kvserve_table, run_breakdown, run_breakdowns, run_figure,
    run_flushbound, run_hotpath, run_kv, run_kvserve_point, run_trace_dump, writes_per_txn,
    FlagDef, HarnessConfig, KvServeConfig, KvServeEngine, ParsedArgs, SubcommandSpec,
    TraceDumpConfig,
};
use crafty_common::trace::{self, TraceConfig, TraceLevel};
use crafty_pmem::LatencyModel;
use crafty_stats::{
    render_breakdown, render_figure, render_figure_csv, render_writes_per_txn_row, Json,
};
use crafty_workloads::{
    ArrivalProcess, BankWorkload, BtreeVariant, BtreeWorkload, Contention, StampKernel,
    StampWorkload, Workload,
};

/// Every subcommand's flags, declared once: the parser validates against
/// this table and `--help` renders from it.
const SPECS: &[SubcommandSpec] = &[
    SubcommandSpec {
        name: "",
        positional: Some("targets..."),
        summary: "regenerate figures/tables (fig6 fig7 fig8 table1 breakdowns \
                  fig22 fig23 fig24 hotpath flushbound kv all; \
                  default: fig6 fig7 table1 + traced phase breakdown)",
        flags: &[
            FlagDef {
                name: "--trace",
                value: Some("LEVEL"),
                help: "trace level for the figure runs: off | counters | events (default off)",
            },
            FlagDef {
                name: "--paper",
                value: None,
                help: "paper scale: threads 1-16, larger transaction budget",
            },
            FlagDef {
                name: "--latency-100",
                value: None,
                help: "use the appendix's 100 ns drain latency model",
            },
            FlagDef {
                name: "--threads",
                value: Some("a,b,c"),
                help: "thread counts to sweep",
            },
            FlagDef {
                name: "--txns",
                value: Some("N"),
                help: "transactions per thread per point",
            },
            FlagDef {
                name: "--csv",
                value: Some("DIR"),
                help: "also write one CSV per figure into DIR",
            },
            FlagDef {
                name: "--json-out",
                value: Some("PATH"),
                help: "override the JSON artifact path of the requested target",
            },
        ],
    },
    SubcommandSpec {
        name: "compare",
        positional: None,
        summary: "CI perf-regression gate: candidate JSON vs committed baseline",
        flags: &[
            FlagDef {
                name: "--candidate",
                value: Some("PATH"),
                help: "fresh benchmark artifact to check (required)",
            },
            FlagDef {
                name: "--baseline",
                value: Some("PATH"),
                help: "committed baseline (default BENCH_hotpath.json / BENCH_kv.json)",
            },
            FlagDef {
                name: "--suite",
                value: Some("hotpath|kv"),
                help: "which artifact schema to gate (default hotpath)",
            },
            FlagDef {
                name: "--tolerance",
                value: Some("F"),
                help: "allowed fractional regression (default 0.40)",
            },
            FlagDef {
                name: "--engine",
                value: Some("NAME"),
                help: "engine under test (default Crafty)",
            },
            FlagDef {
                name: "--reference",
                value: Some("NAME"),
                help: "normalization reference engine (default Non-durable)",
            },
            FlagDef {
                name: "--threads",
                value: Some("N"),
                help: "thread count of the gated point (default 1)",
            },
            FlagDef {
                name: "--absolute",
                value: None,
                help: "compare raw ops/s instead of the normalized ratio",
            },
        ],
    },
    SubcommandSpec {
        name: "torture",
        positional: None,
        summary: "deterministic fault-injection harness with crash-point enumeration",
        flags: &[
            FlagDef {
                name: "--suite",
                value: Some("NAME"),
                help: "bank | fallback | kv | storm | recovery | service | all (default all)",
            },
            FlagDef {
                name: "--seed",
                value: Some("N"),
                help: "workload + crash-model seed",
            },
            FlagDef {
                name: "--txns",
                value: Some("N"),
                help: "transactions per torture workload",
            },
            FlagDef {
                name: "--steps",
                value: Some("N"),
                help: "crash points to sample (0 = exhaustive, the default)",
            },
            FlagDef {
                name: "--crash-step",
                value: Some("N"),
                help: "pin the crash to one step (replaying a reported failure)",
            },
        ],
    },
    SubcommandSpec {
        name: "contention",
        positional: None,
        summary: "forced-fallback zipfian sweep: SGL vs per-line lock policies",
        flags: &[
            FlagDef {
                name: "--threads",
                value: Some("a,b,c"),
                help: "thread counts to sweep (default 2,4,8)",
            },
            FlagDef {
                name: "--txns",
                value: Some("N"),
                help: "transfer transactions per thread per point (default 2000)",
            },
            FlagDef {
                name: "--accounts",
                value: Some("N"),
                help: "accounts in the shared array (default 256)",
            },
            FlagDef {
                name: "--theta",
                value: Some("F"),
                help: "zipfian skew of the account picks (default 0.9)",
            },
            FlagDef {
                name: "--seed",
                value: Some("N"),
                help: "workload seed, fixed across both policies",
            },
            FlagDef {
                name: "--json-out",
                value: Some("PATH"),
                help: "artifact path (default BENCH_contention.json)",
            },
        ],
    },
    SubcommandSpec {
        name: "kvserve",
        positional: None,
        summary: "open-loop latency sweep of the networked KV service front-end",
        flags: &[
            FlagDef {
                name: "--rates",
                value: Some("a,b,c"),
                help: "offered arrival rates, ops/s (default 20000,40000,80000)",
            },
            FlagDef {
                name: "--ops",
                value: Some("N"),
                help: "operations per (engine, rate) point (default 12000)",
            },
            FlagDef {
                name: "--engines",
                value: Some("e,e"),
                help: "non-durable | crafty | crafty-gc (default all three)",
            },
            FlagDef {
                name: "--connections",
                value: Some("N"),
                help: "client connections (default 2)",
            },
            FlagDef {
                name: "--workers",
                value: Some("N"),
                help: "server accept-and-serve threads (default 2)",
            },
            FlagDef {
                name: "--records",
                value: Some("N"),
                help: "prefilled record population (default 4000)",
            },
            FlagDef {
                name: "--read-pct",
                value: Some("N"),
                help: "percentage of reads in the mix (default 50)",
            },
            FlagDef {
                name: "--fixed",
                value: None,
                help: "fixed-rate arrivals instead of Poisson",
            },
            FlagDef {
                name: "--seed",
                value: Some("N"),
                help: "schedule and key-mix seed",
            },
            FlagDef {
                name: "--drain-ns",
                value: Some("N"),
                help: "drain (fence) cost in ns (default 50000)",
            },
            FlagDef {
                name: "--json-out",
                value: Some("PATH"),
                help: "artifact path (default BENCH_kvserve.json)",
            },
            FlagDef {
                name: "--assert-no-shed",
                value: None,
                help: "exit 1 if any point sheds batches (BUSY) — keeps latency baselines honest",
            },
        ],
    },
    SubcommandSpec {
        name: "breakdown",
        positional: None,
        summary: "traced phase-cycle + abort-cause breakdown (bank and YCSB-A, four engines)",
        flags: &[
            FlagDef {
                name: "--threads",
                value: Some("N"),
                help: "worker threads of every point (default 4)",
            },
            FlagDef {
                name: "--txns",
                value: Some("N"),
                help: "transactions per thread per point (default 2000)",
            },
            FlagDef {
                name: "--json-out",
                value: Some("PATH"),
                help: "artifact path (default BENCH_breakdown.json)",
            },
        ],
    },
    SubcommandSpec {
        name: "trace",
        positional: None,
        summary: "dump a traced run's event rings as chrome://tracing JSON",
        flags: &[
            FlagDef {
                name: "--out",
                value: Some("PATH"),
                help: "output path (default trace.json)",
            },
            FlagDef {
                name: "--threads",
                value: Some("N"),
                help: "worker threads (default 2)",
            },
            FlagDef {
                name: "--txns",
                value: Some("N"),
                help: "transactions per thread (default 200)",
            },
            FlagDef {
                name: "--ring",
                value: Some("N"),
                help: "per-thread event-ring capacity (default 4096)",
            },
        ],
    },
];

fn spec(name: &str) -> &'static SubcommandSpec {
    SPECS
        .iter()
        .find(|s| s.name == name)
        .expect("subcommand spec")
}

/// Prints an error and exits with the usage status.
fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_or_fail(spec: &SubcommandSpec, args: &[String]) -> ParsedArgs {
    cli::parse(spec, args).unwrap_or_else(|e| fail(&e))
}

/// Unwraps a flag-parse result, exiting with usage status on error.
fn flag<T>(r: Result<T, String>) -> T {
    r.unwrap_or_else(|e| fail(&e))
}

fn print_usage() {
    print!(
        "{}",
        cli::render_help(
            "figures — regenerate the paper's tables/figures and the benchmark artifacts",
            SPECS,
        )
    );
    println!(
        "\nNOTES:\n\
         The hotpath/flushbound/kv artifacts carry throughput, the measured\n\
         write-amplification ratio (words_persisted / line_words_persisted), and\n\
         the drain-coalescing counters (flush_ranges, lines_per_range). The\n\
         kvserve artifact carries p50/p99/p999 latency per (engine, rate),\n\
         measured from intended send times (coordinated omission visible).\n\
         Torture failures print a (seed, step) pair — replay one exactly with\n\
           figures -- torture --suite S --seed SEED --crash-step STEP"
    );
}

struct Options {
    targets: BTreeSet<String>,
    cfg: HarnessConfig,
    csv_dir: Option<String>,
    json_out: Option<String>,
}

fn parse_figures_args(args: &[String]) -> Options {
    let p = parse_or_fail(spec(""), args);
    let mut targets: BTreeSet<String> = p.positionals().iter().cloned().collect();
    if targets.is_empty() {
        // The traced phase breakdown rides along with every default run,
        // so the four engines' phase tables are always a bare `figures`
        // invocation away.
        for t in ["fig6", "fig7", "table1", "breakdown"] {
            targets.insert(t.to_string());
        }
    }
    if targets.contains("all") {
        for t in [
            "fig6",
            "fig7",
            "fig8",
            "table1",
            "breakdowns",
            "breakdown",
            "fig22",
            "fig23",
            "fig24",
            "hotpath",
            "flushbound",
            "kv",
        ] {
            targets.insert(t.to_string());
        }
    }
    let mut cfg = if p.has("--paper") {
        HarnessConfig::paper()
    } else {
        HarnessConfig::quick()
    };
    if p.has("--latency-100") {
        cfg = cfg.with_latency(LatencyModel::nvm_100ns());
    }
    let threads: Vec<usize> = flag(p.parsed_list("--threads", vec![]));
    if !threads.is_empty() {
        cfg = cfg.with_thread_counts(threads);
    }
    if p.has("--txns") {
        let txns = flag(p.parsed("--txns", cfg.txns_per_thread));
        cfg = cfg.with_txns_per_thread(txns);
    }
    if let Some(level) = p.value("--trace") {
        let level = TraceLevel::parse(level).unwrap_or_else(|| {
            fail(&format!(
                "--trace must be one of off, counters, events; got `{level}`"
            ))
        });
        trace::configure(TraceConfig {
            level,
            ..TraceConfig::default()
        });
    }
    Options {
        targets,
        cfg,
        csv_dir: p.value("--csv").map(str::to_string),
        json_out: p.value("--json-out").map(str::to_string),
    }
}

fn emit(figure_id: &str, workload: &dyn Workload, cfg: &HarnessConfig, csv_dir: &Option<String>) {
    let figure = run_figure(workload, cfg);
    println!("\n== {figure_id}: {} ==", workload.name());
    print!("{}", render_figure(&figure, "Non-durable"));
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv directory");
        let path = format!(
            "{dir}/{}.csv",
            figure_id.replace([' ', '(', ')'], "_").to_lowercase()
        );
        std::fs::write(&path, render_figure_csv(&figure, "Non-durable")).expect("write csv");
        println!("[csv written to {path}]");
    }
}

fn bank_workloads(max_threads: usize) -> Vec<(String, BankWorkload)> {
    [Contention::High, Contention::Medium, Contention::None]
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            (
                format!("fig6{}", (b'a' + i as u8) as char),
                BankWorkload::paper(c, max_threads),
            )
        })
        .collect()
}

/// The `compare` subcommand: the CI perf-regression gate. Exits the
/// process — 0 when the candidate is within tolerance of the baseline,
/// 1 on a regression, 2 on usage or artifact errors.
///
/// `--suite hotpath` (the default) checks one metric: the engine's
/// throughput (normalized to the reference engine unless `--absolute`) at
/// the given thread count. `--suite kv` checks the same normalized metric
/// once *per YCSB mix* present in the baseline; any mix regressing beyond
/// the tolerance fails the gate.
fn run_compare(args: &[String]) -> ! {
    let p = parse_or_fail(spec("compare"), args);
    let suite = p.value("--suite").unwrap_or("hotpath").to_string();
    let tolerance: f64 = flag(p.parsed("--tolerance", 0.40));
    let engine = p.value("--engine").unwrap_or("Crafty").to_string();
    let reference = p.value("--reference").unwrap_or("Non-durable").to_string();
    let threads: u64 = flag(p.parsed("--threads", 1));
    let absolute = p.has("--absolute");

    if suite != "hotpath" && suite != "kv" {
        fail(&format!("--suite must be `hotpath` or `kv`, got `{suite}`"));
    }
    let baseline = p
        .value("--baseline")
        .map(str::to_string)
        .unwrap_or_else(|| {
            if suite == "kv" {
                "BENCH_kv.json".to_string()
            } else {
                "BENCH_hotpath.json".to_string()
            }
        });
    let candidate = p
        .value("--candidate")
        .map(str::to_string)
        .unwrap_or_else(|| {
            fail(&format!(
                "compare requires --candidate PATH (a fresh {suite} JSON artifact)"
            ))
        });

    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        Json::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
    };
    // Looks up one point's ops/s by engine, thread count, and (for the kv
    // suite) mix label.
    let ops = |doc: &Json, path: &str, engine: &str, mix: Option<&str>| -> f64 {
        doc.get("points")
            .map(Json::items)
            .unwrap_or(&[])
            .iter()
            .find(|p| {
                p.get("engine").and_then(Json::as_str) == Some(engine)
                    && p.get("threads").and_then(Json::as_u64) == Some(threads)
                    && (mix.is_none() || p.get("mix").and_then(Json::as_str) == mix)
            })
            .and_then(|p| p.get("ops_per_sec"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| {
                let mix_note = mix.map(|m| format!(" for mix {m}")).unwrap_or_default();
                fail(&format!(
                    "{path}: no `{engine}` point at {threads} thread(s){mix_note}"
                ))
            })
    };

    let base_doc = load(&baseline);
    let cand_doc = load(&candidate);

    // The (label, mix) cells to gate: one for the hotpath suite, one per
    // distinct baseline mix for the kv suite.
    let cells: Vec<(String, Option<String>)> = if suite == "kv" {
        let mut mixes: Vec<String> = Vec::new();
        for p in base_doc.get("points").map(Json::items).unwrap_or(&[]) {
            if let Some(m) = p.get("mix").and_then(Json::as_str) {
                if !mixes.iter().any(|seen| seen == m) {
                    mixes.push(m.to_string());
                }
            }
        }
        if mixes.is_empty() {
            fail(&format!("{baseline}: no kv mixes found in baseline points"));
        }
        mixes
            .into_iter()
            .map(|m| (format!("YCSB-{m}"), Some(m)))
            .collect()
    } else {
        vec![("hotpath".to_string(), None)]
    };

    let metric_name = if absolute {
        format!("{engine} ops/s at {threads} thread(s)")
    } else {
        format!("{engine}/{reference} throughput ratio at {threads} thread(s)")
    };
    println!("perf-regression gate [{suite}]: {metric_name}");
    let mut failed = false;
    for (label, mix) in &cells {
        let mix = mix.as_deref();
        let (base_metric, cand_metric) = if absolute {
            (
                ops(&base_doc, &baseline, &engine, mix),
                ops(&cand_doc, &candidate, &engine, mix),
            )
        } else {
            // Normalizing to a reference engine measured in the same
            // artifact cancels host-speed differences between the baseline
            // machine and the CI runner.
            (
                ops(&base_doc, &baseline, &engine, mix)
                    / ops(&base_doc, &baseline, &reference, mix),
                ops(&cand_doc, &candidate, &engine, mix)
                    / ops(&cand_doc, &candidate, &reference, mix),
            )
        };
        let floor = base_metric * (1.0 - tolerance);
        let verdict = if cand_metric >= floor {
            "ok"
        } else {
            failed = true;
            "REGRESSED"
        };
        println!(
            "  {label:<10} baseline {base_metric:>8.4}  candidate {cand_metric:>8.4}  \
             floor {floor:>8.4}  {verdict}"
        );
    }
    if !failed {
        println!("PASS: candidate is within tolerance of the committed baseline.");
        std::process::exit(0);
    }
    println!(
        "FAIL: candidate regressed more than {:.0}% below the baseline.",
        tolerance * 100.0
    );
    let refresh = if suite == "kv" {
        "kv --threads 1 --txns 1000"
    } else {
        "hotpath"
    };
    println!(
        "If this shift is intentional, refresh the baseline with\n  \
         cargo run --release -p crafty-bench --bin figures -- {refresh}\n\
         and commit the regenerated {baseline} with your change."
    );
    std::process::exit(1);
}

/// The `torture` subcommand: the deterministic fault-injection harness.
/// Exits the process — 0 when every audited crash image satisfied every
/// invariant (and the auditor self-test caught its injected violation),
/// 1 on any violation, 2 on usage errors.
fn run_torture(args: &[String]) -> ! {
    use crafty_torture::{
        injected_violation_is_caught, run_bank_torture, run_fallback_torture, run_kv_torture,
        run_recovery_torture, run_service_torture, run_storm_torture, TortureConfig, TortureReport,
    };

    let p = parse_or_fail(spec("torture"), args);
    let suite = p.value("--suite").unwrap_or("all").to_string();
    let mut cfg = TortureConfig::quick(1);
    cfg.seed = flag(p.parsed("--seed", cfg.seed));
    cfg.txns = flag(p.parsed("--txns", cfg.txns));
    cfg.max_crash_points = flag(p.parsed("--steps", cfg.max_crash_points));
    if p.has("--crash-step") {
        cfg.crash_step = Some(flag(p.parsed("--crash-step", 0)));
    }

    let known = [
        "bank", "fallback", "kv", "storm", "recovery", "service", "all",
    ];
    if !known.contains(&suite.as_str()) {
        fail(&format!("--suite must be one of {known:?}, got `{suite}`"));
    }
    let wants = |s: &str| suite == s || suite == "all";

    println!(
        "torture harness — seed {}, {} txns, {} crash points{}",
        cfg.seed,
        cfg.txns,
        if cfg.max_crash_points == 0 {
            "exhaustive".to_string()
        } else {
            format!("{} sampled", cfg.max_crash_points)
        },
        cfg.crash_step
            .map(|s| format!(", pinned to step {s}"))
            .unwrap_or_default(),
    );
    let mut failed = false;
    let show = |report: &TortureReport| -> bool {
        if report.total_steps == 0 {
            // The storm suite audits liveness + durability, not crash points.
            println!(
                "\n[{}] liveness + durability audit (no crash-point enumeration, seed {})",
                report.suite, report.seed,
            );
        } else {
            println!(
                "\n[{}] {} crash points audited (steps {}..={} of the run, seed {})",
                report.suite,
                report.crash_points_tested,
                report.setup_steps + 1,
                report.total_steps,
                report.seed,
            );
        }
        if report.ok() {
            println!("  ok — every crash image satisfied every invariant");
        } else {
            for f in &report.failures {
                println!("  VIOLATION {f}");
                println!(
                    "    replay: figures -- torture --suite {} --seed {} --txns {} \
                     --crash-step {}",
                    report.suite, f.seed, cfg.txns, f.step
                );
            }
        }
        !report.ok()
    };

    if wants("bank") {
        failed |= show(&run_bank_torture(&cfg));
        match injected_violation_is_caught(&cfg) {
            Ok(f) => println!("  self-test: injected violation was caught — {f}"),
            Err(e) => {
                failed = true;
                println!("  SELF-TEST FAILED: {e}");
            }
        }
    }
    if wants("fallback") {
        failed |= show(&run_fallback_torture(&cfg));
    }
    if wants("kv") {
        failed |= show(&run_kv_torture(&cfg));
    }
    if wants("recovery") {
        failed |= show(&run_recovery_torture(&cfg));
    }
    if wants("storm") {
        failed |= show(&run_storm_torture(&cfg));
    }
    if wants("service") {
        // The networked suite restarts a real server per crash point, and
        // its step clock is not byte-deterministic (threads + sockets), so
        // exhaustive enumeration buys nothing over sampling: bound the
        // default instead of replaying thousands of boots.
        let mut svc = cfg;
        if svc.max_crash_points == 0 && svc.crash_step.is_none() {
            svc.max_crash_points = 8;
            println!("\n[service] sampling 8 crash points (use --steps to change)");
        }
        failed |= show(&run_service_torture(&svc));
    }

    if failed {
        println!("\nFAIL: the torture harness found invariant violations.");
        std::process::exit(1);
    }
    println!("\nPASS: no invariant violations found.");
    std::process::exit(0);
}

/// Runs the traced breakdown matrix (bank + YCSB-A on the four KV
/// engines at `Counters` level), prints the per-engine phase tables and
/// abort-cause histograms, and writes the JSON artifact. Shared by the
/// `breakdown` subcommand and the default figure run.
fn emit_breakdown(cfg: &HarnessConfig, json_path: &str) {
    println!("\n== traced phase breakdown: bank + YCSB-A on the four KV engines ==");
    let runs = run_breakdown(cfg);
    let mut current_mix = String::new();
    for r in &runs {
        if r.mix != current_mix {
            println!(
                "\n-- {} ({} threads, trace level counters) --",
                r.mix, r.threads
            );
            current_mix.clone_from(&r.mix);
        }
        print!("{}", render_breakdown(&r.engine, &r.snapshot));
    }
    std::fs::write(json_path, render_breakdown_json(cfg, &runs)).expect("write breakdown json");
    println!("[json written to {json_path}]");
}

/// The `breakdown` subcommand: the traced phase-cycle decomposition.
/// Exits 0 after writing the artifact, 2 on usage errors.
fn run_breakdown_cmd(args: &[String]) -> ! {
    let p = parse_or_fail(spec("breakdown"), args);
    let threads: usize = flag(p.parsed("--threads", 4));
    let txns: u64 = flag(p.parsed("--txns", 2_000));
    let json_path = p.value("--json-out").unwrap_or("BENCH_breakdown.json");
    let cfg = HarnessConfig::quick()
        .with_thread_counts(vec![threads])
        .with_txns_per_thread(txns);
    emit_breakdown(&cfg, json_path);
    std::process::exit(0);
}

/// The `trace` subcommand: capture one traced run's event rings and dump
/// them as chrome://tracing JSON. Exits 0 after writing, 2 on usage
/// errors.
fn run_trace_cmd(args: &[String]) -> ! {
    let p = parse_or_fail(spec("trace"), args);
    let mut dump = TraceDumpConfig::quick();
    dump.threads = flag(p.parsed("--threads", dump.threads));
    dump.txns_per_thread = flag(p.parsed("--txns", dump.txns_per_thread));
    dump.ring_capacity = flag(p.parsed("--ring", dump.ring_capacity));
    let out = p.value("--out").unwrap_or("trace.json");
    let cfg = HarnessConfig::quick().with_thread_counts(vec![dump.threads]);
    println!(
        "trace — {} on bank (medium contention), {} threads × {} txns, ring capacity {}",
        dump.engine.label(),
        dump.threads,
        dump.txns_per_thread,
        dump.ring_capacity,
    );
    std::fs::write(out, run_trace_dump(&dump, &cfg)).expect("write trace json");
    println!("[chrome trace written to {out} — load it in chrome://tracing or Perfetto]");
    std::process::exit(0);
}

/// The `contention` subcommand: the forced-fallback zipfian sweep that
/// compares the SGL and per-line fallback policies head to head. Exits 0
/// after writing `BENCH_contention.json`, 1 if any point fails its
/// conservation audit, 2 on usage errors.
fn run_contention_cmd(args: &[String]) -> ! {
    use crafty_bench::{render_contention_json, run_contention_point, ContentionConfig};
    use crafty_core::FallbackPolicy;

    let p = parse_or_fail(spec("contention"), args);
    let mut cfg = ContentionConfig::quick();
    cfg.thread_counts = flag(p.parsed_list("--threads", cfg.thread_counts));
    cfg.txns_per_thread = flag(p.parsed("--txns", cfg.txns_per_thread));
    cfg.accounts = flag(p.parsed("--accounts", cfg.accounts));
    cfg.theta = flag(p.parsed("--theta", cfg.theta));
    cfg.seed = flag(p.parsed("--seed", cfg.seed));
    let json_path = p.value("--json-out").unwrap_or("BENCH_contention.json");

    println!(
        "contention — forced-fallback zipfian transfers, {} accounts, theta {}, \
         {} txns/thread, threads {:?}",
        cfg.accounts, cfg.theta, cfg.txns_per_thread, cfg.thread_counts,
    );
    let mut points = Vec::new();
    let mut audits_clean = true;
    for policy in [FallbackPolicy::Sgl, FallbackPolicy::PerLine] {
        for &threads in &cfg.thread_counts.clone() {
            let point = run_contention_point(&cfg, policy, threads);
            println!(
                "  {:<8} @ {:>2} threads: {:>10.0} txns/s{}",
                point.policy,
                point.threads,
                point.ops_per_sec,
                if point.conserved {
                    ""
                } else {
                    "  AUDIT FAILED (lost updates)"
                },
            );
            audits_clean &= point.conserved;
            points.push(point);
        }
    }
    if !audits_clean {
        println!("\nFAIL: a contention point lost updates; no artifact written.");
        std::process::exit(1);
    }
    std::fs::write(json_path, render_contention_json(&cfg, &points))
        .expect("write contention json");
    println!("[json written to {json_path}]");
    std::process::exit(0);
}

/// The `kvserve` subcommand: the open-loop service latency sweep. Exits 0
/// after writing the artifact, 2 on usage errors.
fn run_kvserve_cmd(args: &[String]) -> ! {
    let p = parse_or_fail(spec("kvserve"), args);
    let mut cfg = KvServeConfig::quick();
    cfg.rates = flag(p.parsed_list("--rates", cfg.rates));
    cfg.ops = flag(p.parsed("--ops", cfg.ops));
    cfg.records = flag(p.parsed("--records", cfg.records));
    cfg.connections = flag(p.parsed("--connections", cfg.connections));
    cfg.workers = flag(p.parsed("--workers", cfg.workers));
    cfg.read_pct = flag(p.parsed("--read-pct", cfg.read_pct));
    cfg.seed = flag(p.parsed("--seed", cfg.seed));
    cfg.latency.drain_ns = flag(p.parsed("--drain-ns", cfg.latency.drain_ns));
    cfg.engines = flag(p.parsed_list::<KvServeEngine>("--engines", cfg.engines));
    if p.has("--fixed") {
        cfg.arrival = ArrivalProcess::Fixed;
    }
    let json_path = p.value("--json-out").unwrap_or("BENCH_kvserve.json");

    println!(
        "kvserve — open-loop {} arrivals, {} ops/point, {} connections, {} workers, \
         drain {} ns",
        cfg.arrival.label(),
        cfg.ops,
        cfg.connections,
        cfg.workers,
        cfg.latency.drain_ns,
    );
    let mut points = Vec::new();
    for &engine in &cfg.engines {
        for &rate in &cfg.rates {
            let point = run_kvserve_point(&cfg, engine, rate);
            let (p50, p99, p999) = point.percentiles();
            println!(
                "  {:<12} @ {:>7}/s: {:>7.0} achieved, batch {:>5.2}, \
                 p50/p99/p999 = {:.1}/{:.1}/{:.1} µs",
                point.engine,
                rate,
                point.achieved_rate,
                point.mean_batch,
                p50 as f64 / 1e3,
                p99 as f64 / 1e3,
                p999 as f64 / 1e3,
            );
            points.push(point);
        }
    }
    println!("\n{}", render_kvserve_table(&points));
    std::fs::write(json_path, render_kvserve_json(&cfg, &points)).expect("write kvserve json");
    println!("[json written to {json_path}]");
    if p.has("--assert-no-shed") {
        let shed: Vec<_> = points.iter().filter(|pt| pt.shed_batches > 0).collect();
        if !shed.is_empty() {
            println!("\nASSERT-NO-SHED FAILED — overload shedding fired during the sweep:");
            for pt in &shed {
                println!(
                    "  {:<12} @ {:>7}/s: {} batches shed (latency figures above are \
                     survivorship-biased)",
                    pt.engine, pt.rate_per_sec, pt.shed_batches,
                );
            }
            std::process::exit(1);
        }
        println!("[assert-no-shed: ok — no point shed a batch]");
    }
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print_usage();
        return;
    }
    match argv.first().map(String::as_str) {
        Some("compare") => run_compare(&argv[1..]),
        Some("torture") => run_torture(&argv[1..]),
        Some("contention") => run_contention_cmd(&argv[1..]),
        Some("kvserve") => run_kvserve_cmd(&argv[1..]),
        Some("breakdown") => run_breakdown_cmd(&argv[1..]),
        Some("trace") => run_trace_cmd(&argv[1..]),
        _ => {}
    }
    let options = parse_figures_args(&argv);
    let cfg = &options.cfg;
    let max_threads = cfg.thread_counts.iter().copied().max().unwrap_or(1);
    let latency_note = format!("{} ns drain latency", cfg.latency.drain_ns);
    println!("crafty figure harness — engines: {:?}", cfg.engines.len());
    println!(
        "thread counts {:?}, {} transactions/thread, {latency_note}",
        cfg.thread_counts, cfg.txns_per_thread
    );

    let has = |t: &str| options.targets.contains(t);

    if has("fig6") {
        for (id, w) in bank_workloads(max_threads) {
            emit(&id, &w, cfg, &options.csv_dir);
        }
    }
    if has("fig7") {
        emit(
            "fig7a",
            &BtreeWorkload::paper(BtreeVariant::InsertOnly),
            cfg,
            &options.csv_dir,
        );
        emit(
            "fig7b",
            &BtreeWorkload::paper(BtreeVariant::Mixed),
            cfg,
            &options.csv_dir,
        );
    }
    if has("fig8") {
        for (i, kernel) in StampKernel::ALL.iter().enumerate() {
            let id = format!("fig8{}", (b'a' + i as u8) as char);
            emit(&id, &StampWorkload::new(*kernel), cfg, &options.csv_dir);
        }
    }
    if has("table1") {
        println!("\n== Table 1: average writes per persistent transaction ==");
        let threads = *cfg.thread_counts.first().unwrap_or(&1);
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for (name, w) in bank_workloads(max_threads) {
            let _ = name;
            rows.push((w.name(), writes_per_txn(&w, threads, cfg), 10.0));
        }
        for variant in [BtreeVariant::InsertOnly, BtreeVariant::Mixed] {
            let w = BtreeWorkload::paper(variant);
            let expected = match variant {
                BtreeVariant::InsertOnly => 14.0,
                BtreeVariant::Mixed => 13.3,
            };
            rows.push((w.name(), writes_per_txn(&w, threads, cfg), expected));
        }
        for kernel in StampKernel::ALL {
            let w = StampWorkload::new(kernel);
            rows.push((
                w.name(),
                writes_per_txn(&w, threads, cfg),
                kernel.paper_writes_per_txn(),
            ));
        }
        println!("{:<28}{:>12}{:>12}", "benchmark", "measured", "paper");
        for (name, measured, paper) in rows {
            println!("{name:<28}{measured:>12.1}{paper:>12.1}");
            let _ = render_writes_per_txn_row(&name, &[(threads, measured)]);
        }
    }
    if has("breakdowns") {
        let threads = max_threads;
        println!("\n== Figures 9–21: transaction breakdowns at {threads} threads ==");
        let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
        for (_, w) in bank_workloads(max_threads) {
            workloads.push(Box::new(w));
        }
        workloads.push(Box::new(BtreeWorkload::paper(BtreeVariant::InsertOnly)));
        workloads.push(Box::new(BtreeWorkload::paper(BtreeVariant::Mixed)));
        for kernel in StampKernel::ALL {
            workloads.push(Box::new(StampWorkload::new(kernel)));
        }
        for w in &workloads {
            println!("\n-- {} --", w.name());
            for (engine, snapshot) in run_breakdowns(w.as_ref(), threads, cfg) {
                print!("{}", render_breakdown(&engine, &snapshot));
            }
        }
    }
    if has("breakdown") {
        emit_breakdown(cfg, "BENCH_breakdown.json");
    }
    if has("hotpath") {
        let path = options.json_out.as_deref().unwrap_or("BENCH_hotpath.json");
        println!("\n== hotpath: tracked bank benchmark ==");
        let points = run_hotpath(cfg);
        for p in &points {
            let aborts: u64 = p
                .hw_outcomes
                .iter()
                .filter(|(label, _)| *label != "commit")
                .map(|(_, c)| c)
                .sum();
            println!(
                "{:<20} {:>2} thr {:>12.0} ops/s  {:>8} hw aborts  w-amp {:.3}  \
                 {:>7} ranges / {:>7} lines ({:.2}/rng)",
                p.engine,
                p.threads,
                p.ops_per_sec,
                aborts,
                p.write_amplification,
                p.flush_ranges,
                p.lines_persisted,
                p.lines_per_range
            );
        }
        std::fs::write(path, render_hotpath_json(cfg, &points)).expect("write hotpath json");
        println!("[json written to {path}]");
    }
    if has("flushbound") {
        // `--json-out` names the hotpath or kv artifact when those targets
        // run in the same invocation; flushbound then keeps its default.
        let path = if has("hotpath") || has("kv") {
            "BENCH_flushbound.json"
        } else {
            options
                .json_out
                .as_deref()
                .unwrap_or("BENCH_flushbound.json")
        };
        println!("\n== flushbound: persistence-domain microbenchmark ==");
        println!(
            "{:>3}  {:>14}  {:>14}  {:>12}  {:>12}  {:>6}  {:>10}  {:>9}",
            "thr",
            "lines/s",
            "drains/s",
            "lines total",
            "words total",
            "w-amp",
            "ranges",
            "lines/rng"
        );
        let points = run_flushbound(cfg);
        for p in &points {
            println!(
                "{:>3}  {:>14.0}  {:>14.0}  {:>12}  {:>12}  {:>6.3}  {:>10}  {:>9.2}",
                p.threads,
                p.lines_per_sec,
                p.drains_per_sec,
                p.lines_persisted,
                p.words_persisted,
                p.write_amplification,
                p.flush_ranges,
                p.lines_per_range
            );
        }
        std::fs::write(path, render_flushbound_json(cfg, &points)).expect("write flushbound json");
        println!("[json written to {path}]");
    }
    if has("kv") {
        // `--json-out` names the hotpath artifact when both targets run in
        // one invocation; kv then keeps its default path.
        let path = if has("hotpath") {
            "BENCH_kv.json"
        } else {
            options.json_out.as_deref().unwrap_or("BENCH_kv.json")
        };
        println!("\n== kv: YCSB mixes over the durable sharded store ==");
        let points = run_kv(cfg);
        for p in &points {
            println!(
                "YCSB-{:<4} {:<14} {:>2} thr {:>12.0} ops/s  w-amp {:.3}  \
                 {:>6} ranges / {:>6} lines ({:.2}/rng)",
                p.mix,
                p.engine,
                p.threads,
                p.ops_per_sec,
                p.write_amplification,
                p.flush_ranges,
                p.lines_persisted,
                p.lines_per_range
            );
        }
        std::fs::write(path, render_kv_json(cfg, &points)).expect("write kv json");
        println!("[json written to {path}]");
    }
    // Appendix figures: the same benchmarks at 100 ns drain latency.
    let appendix = cfg.clone().with_latency(LatencyModel::nvm_100ns());
    if has("fig22") {
        for (id, w) in bank_workloads(max_threads) {
            emit(
                &id.replace("fig6", "fig22"),
                &w,
                &appendix,
                &options.csv_dir,
            );
        }
    }
    if has("fig23") {
        emit(
            "fig23a",
            &BtreeWorkload::paper(BtreeVariant::InsertOnly),
            &appendix,
            &options.csv_dir,
        );
        emit(
            "fig23b",
            &BtreeWorkload::paper(BtreeVariant::Mixed),
            &appendix,
            &options.csv_dir,
        );
    }
    if has("fig24") {
        for (i, kernel) in StampKernel::ALL.iter().enumerate() {
            let id = format!("fig24{}", (b'a' + i as u8) as char);
            emit(
                &id,
                &StampWorkload::new(*kernel),
                &appendix,
                &options.csv_dir,
            );
        }
    }
    println!("\ndone.");
}
