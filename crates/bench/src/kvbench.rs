//! The KV-store benchmark behind `BENCH_kv.json`.
//!
//! Runs the YCSB-style mixes (A/B/C read-heavy, E scan) over the durable
//! sharded [`crafty_kv`](crafty_workloads::ycsb) store on the four engines
//! the paper's headline comparison uses — Crafty, Non-durable, NV-HTM, and
//! DudeTM — and renders the machine-readable artifact behind the committed
//! `BENCH_kv.json` baseline. CI reruns the benchmark, uploads the fresh
//! JSON as the `kv-candidate` artifact, and gates on it with
//! `figures compare --suite kv` (per-mix Crafty/Non-durable ratio against
//! the committed baseline, 40% tolerance).
//!
//! Each point also reports the measured write amplification of its persist
//! traffic (`words_persisted / line_words_persisted`): KV updates touch
//! one or two words of an 8-word line, so this workload is the headline
//! beneficiary of the word-granular persistence pipeline. Alongside it,
//! `flush_ranges` / `lines_per_range` report how well the batched drain
//! pipeline coalesced adjacent lines into ranged flushes.
//!
//! The `A+gc` mix is the batched-update mode: workload A's traffic with
//! every 8 consecutive transactions sharing one drain barrier through the
//! engines' group-commit path (`ShardedKv::apply_batch` exposes the same
//! layer to applications). The A → A+gc delta measures the per-transaction
//! durability-ack cost.

use crafty_common::{CompletionPath, HwTxnOutcome};
use crafty_stats::Json;
use crafty_workloads::{EngineKind, YcsbMix, YcsbWorkload};

use crate::{round2, round4, run_point, HarnessConfig};

/// Engines the KV benchmark compares (legend order).
pub const KV_ENGINES: [EngineKind; 4] = [
    EngineKind::NonDurable,
    EngineKind::DudeTm,
    EngineKind::NvHtm,
    EngineKind::Crafty,
];

/// One (mix, engine, thread count) sample of the KV benchmark.
#[derive(Clone, Debug)]
pub struct KvPoint {
    /// Mix label (`"A"`, `"B"`, `"C"`, `"E"`).
    pub mix: &'static str,
    /// Engine legend label.
    pub engine: String,
    /// Worker thread count.
    pub threads: usize,
    /// Persistent transactions executed across all threads.
    pub transactions: u64,
    /// Transactions per second.
    pub ops_per_sec: f64,
    /// Completion-path counts (read-only / redo / validate / sgl / …).
    pub completions: Vec<(&'static str, u64)>,
    /// Hardware-transaction outcome counts (commit / conflict / …).
    pub hw_outcomes: Vec<(&'static str, u64)>,
    /// Words actually copied to the persistent image by write-backs.
    pub words_persisted: u64,
    /// Words whole-line write-backs would have copied for the same events.
    pub line_words_persisted: u64,
    /// Measured write amplification (`words / line_words`). Small KV
    /// values in big tables are the headline beneficiary of the
    /// word-granular pipeline: most updates touch one or two words of an
    /// 8-word line.
    pub write_amplification: f64,
    /// Lines written back by drains.
    pub lines_persisted: u64,
    /// Ranged flushes the drains issued; `< lines_persisted` means the
    /// coalescing pipeline found adjacent runs (undo-log entries are the
    /// main source — a transaction's sequence occupies consecutive lines).
    pub flush_ranges: u64,
    /// Average adjacent-line run length (`range_lines / flush_ranges`).
    pub lines_per_range: f64,
}

/// Runs every KV mix on every engine at every configured thread count.
/// Each point gets a fresh space and a freshly prefetched store, exactly
/// like the paper's per-point process runs.
pub fn run_kv(cfg: &HarnessConfig) -> Vec<KvPoint> {
    let mut points = Vec::new();
    for mix in YcsbMix::ALL {
        let workload = YcsbWorkload::paper(mix);
        for kind in KV_ENGINES {
            for &threads in &cfg.thread_counts {
                let (m, breakdown, pmem) = run_point(&workload, kind, threads, cfg);
                points.push(KvPoint {
                    mix: mix.label(),
                    engine: kind.label().to_string(),
                    threads,
                    transactions: m.transactions,
                    ops_per_sec: m.throughput(),
                    completions: CompletionPath::ALL
                        .iter()
                        .map(|&p| (p.label(), breakdown.completions(p)))
                        .collect(),
                    hw_outcomes: HwTxnOutcome::ALL
                        .iter()
                        .map(|&o| (o.label(), breakdown.hw(o)))
                        .collect(),
                    words_persisted: pmem.words_persisted,
                    line_words_persisted: pmem.line_words_persisted,
                    write_amplification: pmem.write_amplification(),
                    lines_persisted: pmem.lines_persisted,
                    flush_ranges: pmem.flush_ranges,
                    lines_per_range: pmem.lines_per_range(),
                });
            }
        }
    }
    points
}

/// Renders the KV samples as the `BENCH_kv.json` artifact.
pub fn render_kv_json(cfg: &HarnessConfig, points: &[KvPoint]) -> String {
    let workload = YcsbWorkload::paper(YcsbMix::A);
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        let mut completions = Json::object();
        for (label, count) in &p.completions {
            completions.set(label, Json::UInt(*count));
        }
        let mut hw = Json::object();
        for (label, count) in &p.hw_outcomes {
            hw.set(label, Json::UInt(*count));
        }
        arr.push(
            Json::object()
                .with("mix", Json::from(p.mix))
                .with("engine", Json::from(p.engine.as_str()))
                .with("threads", Json::from(p.threads))
                .with("transactions", Json::from(p.transactions))
                .with("ops_per_sec", Json::Float(round2(p.ops_per_sec)))
                .with("words_persisted", Json::UInt(p.words_persisted))
                .with(
                    "write_amplification",
                    Json::Float(round4(p.write_amplification)),
                )
                .with("lines_persisted", Json::UInt(p.lines_persisted))
                .with("flush_ranges", Json::UInt(p.flush_ranges))
                .with("lines_per_range", Json::Float(round4(p.lines_per_range)))
                .with("completions", completions)
                .with("hw_outcomes", hw),
        );
    }
    Json::object()
        .with("benchmark", Json::from("ycsb over crafty-kv"))
        .with(
            "config",
            Json::object()
                .with("txns_per_thread", Json::from(cfg.txns_per_thread))
                .with("drain_latency_ns", Json::from(cfg.latency.drain_ns))
                .with("records", Json::from(workload.records))
                .with("shards", Json::from(workload.shards))
                .with("zipf_theta", Json::Float(workload.theta))
                // The seed that actually pins the key stream: the
                // workload's own (per-transaction RNG streams derive from
                // it), not the harness seed, which the KV mixes ignore.
                .with("seed", Json::from(workload.seed)),
        )
        .with("points", Json::Array(arr))
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_pmem::LatencyModel;

    #[test]
    fn kv_points_cover_all_mixes_and_engines() {
        let cfg = HarnessConfig {
            engines: KV_ENGINES.to_vec(),
            thread_counts: vec![1],
            txns_per_thread: 40,
            latency: LatencyModel::instant(),
            persistent_words: 1 << 21,
            seed: 1,
        };
        let points = run_kv(&cfg);
        assert_eq!(points.len(), YcsbMix::ALL.len() * KV_ENGINES.len());
        assert!(points.iter().all(|p| p.transactions == 40));
        assert!(points.iter().all(|p| p.ops_per_sec > 0.0));
        // The headline claim of the word-granular pipeline: KV updates
        // touch a couple of words per 8-word line, so Crafty's persist
        // traffic on the write-heavy mix stays well under whole-line cost.
        let crafty_a = points
            .iter()
            .find(|p| p.mix == "A" && p.engine == "Crafty")
            .expect("Crafty YCSB-A point");
        assert!(
            crafty_a.write_amplification < 0.5,
            "YCSB-A write amplification {} should be below 0.5",
            crafty_a.write_amplification
        );
        assert!(crafty_a.words_persisted > 0);
        // The batched-update mode runs on every engine (group commit on
        // Crafty, graceful per-txn fallback elsewhere).
        let crafty_gc = points
            .iter()
            .find(|p| p.mix == "A+gc" && p.engine == "Crafty")
            .expect("Crafty YCSB-A+gc point");
        assert_eq!(crafty_gc.transactions, 40);
        // Coalescing is measurably active on the batched mode: deferral
        // accumulates several transactions' undo sequences and markers —
        // consecutive lines of the circular log — into one claimed range,
        // so drains must find runs longer than one line. (Plain A's
        // single-update sequences often fit one line each, drained alone.)
        assert!(
            crafty_gc.flush_ranges < crafty_gc.lines_persisted,
            "coalescing inactive under group commit: {} ranges for {} lines",
            crafty_gc.flush_ranges,
            crafty_gc.lines_persisted
        );
        assert!(crafty_gc.lines_per_range > 1.0);
        let json = render_kv_json(&cfg, &points);
        for engine in ["Crafty", "Non-durable", "NV-HTM", "DudeTM"] {
            assert!(
                json.contains(&format!("\"engine\": \"{engine}\"")),
                "{engine}"
            );
        }
        for mix in ["\"A\"", "\"B\"", "\"C\"", "\"E\"", "\"A+gc\""] {
            assert!(json.contains(&format!("\"mix\": {mix}")), "{mix}");
        }
        assert!(json.contains("\"zipf_theta\""));
        assert!(json.contains("\"write_amplification\""));
        assert!(json.contains("\"flush_ranges\""));
    }
}
