//! The benchmark harness behind the `figures` binary and the Criterion
//! benches: every table and figure of the paper's evaluation is regenerated
//! from the functions in this crate.
//!
//! A figure run is fully described by a [`HarnessConfig`]: which engines,
//! which thread counts, how many transactions per thread, and which NVM
//! latency model (300 ns for the main figures, 100 ns for the appendix).
//! Each (engine, thread-count) point gets a fresh simulated memory space
//! and a fresh engine, exactly as each point in the paper is a separate
//! process run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod cli;
pub mod contention;
pub mod flushbound;
pub mod hotpath;
pub mod kvbench;
pub mod kvserve;
pub mod tracedump;

pub use breakdown::{render_breakdown_json, run_breakdown, BreakdownRun};
pub use cli::{parse, render_help, FlagDef, ParsedArgs, SubcommandSpec};
pub use contention::{
    render_contention_json, run_contention, run_contention_point, ContentionConfig, ContentionPoint,
};
pub use flushbound::{render_flushbound_json, run_flushbound, FlushboundPoint};
pub use hotpath::{render_hotpath_json, run_hotpath, HotpathPoint};
pub use kvbench::{render_kv_json, run_kv, KvPoint, KV_ENGINES};
pub use kvserve::{
    render_kvserve_json, render_kvserve_table, run_kvserve, run_kvserve_point, KvServeConfig,
    KvServeEngine, KvServePoint,
};
pub use tracedump::{run_trace_dump, TraceDumpConfig};

/// Serializes tests that flip the process-global trace level, so their
/// assertions about what was (or was not) recorded cannot race.
#[cfg(test)]
pub(crate) static TRACE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Rounds to two decimals for the JSON artifacts (stable, diff-friendly
/// files).
pub(crate) fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Rounds to four decimals (write-amplification ratios live well below 1,
/// where two decimals would lose most of the signal).
pub(crate) fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

use std::sync::Arc;

use crafty_common::BreakdownSnapshot;
use crafty_pmem::{LatencyModel, MemorySpace, PmemConfig, PmemStats};
use crafty_stats::{Figure, Measurement};
use crafty_workloads::{build_engine, measure, EngineKind, Workload};

/// Parameters of one figure regeneration.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Engines to run (legend order).
    pub engines: Vec<EngineKind>,
    /// Thread counts to sweep.
    pub thread_counts: Vec<usize>,
    /// Persistent transactions per thread at each point.
    pub txns_per_thread: u64,
    /// Emulated NVM latency (300 ns main figures, 100 ns appendix).
    pub latency: LatencyModel,
    /// Simulated persistent region size in words.
    pub persistent_words: u64,
    /// Workload seed (kept fixed across engines so they see the same keys).
    pub seed: u64,
}

impl HarnessConfig {
    /// A configuration small enough for CI and the Criterion benches:
    /// three thread counts, all six engines, a few thousand transactions.
    pub fn quick() -> Self {
        HarnessConfig {
            engines: EngineKind::ALL.to_vec(),
            thread_counts: vec![1, 2, 4],
            txns_per_thread: 2_000,
            latency: LatencyModel::nvm_300ns(),
            persistent_words: 1 << 22,
            seed: 42,
        }
    }

    /// The paper-scale configuration: thread counts 1–16 and a larger
    /// transaction budget. Expect minutes per figure.
    pub fn paper() -> Self {
        HarnessConfig {
            engines: EngineKind::ALL.to_vec(),
            thread_counts: crafty_stats::PAPER_THREAD_COUNTS.to_vec(),
            txns_per_thread: 20_000,
            latency: LatencyModel::nvm_300ns(),
            persistent_words: 1 << 24,
            seed: 42,
        }
    }

    /// Switches the latency model (builder style), e.g. to the appendix's
    /// 100 ns setting for Figures 22–24.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the transaction budget (builder style).
    pub fn with_txns_per_thread(mut self, txns: u64) -> Self {
        self.txns_per_thread = txns;
        self
    }

    /// Overrides the thread counts (builder style).
    pub fn with_thread_counts(mut self, threads: Vec<usize>) -> Self {
        self.thread_counts = threads;
        self
    }

    pub(crate) fn pmem_config(&self, max_threads: usize) -> PmemConfig {
        PmemConfig {
            persistent_words: self.persistent_words,
            volatile_words: 1 << 20,
            max_threads: max_threads + 2, // workers + checkpointer + slack
            latency: self.latency,
            crash: crafty_pmem::CrashModel::strict(),
            ..PmemConfig::benchmark()
        }
    }
}

/// Runs one (workload, engine, thread count) point and returns its
/// measurement together with the engine's breakdown counters and the
/// memory space's persist-traffic counters for the *measured run only*
/// (setup and prefill traffic is snapshotted away, so the
/// `words_persisted`/`line_words_persisted` pair is the steady-state write
/// amplification of the point).
pub fn run_point(
    workload: &dyn Workload,
    kind: EngineKind,
    threads: usize,
    cfg: &HarnessConfig,
) -> (Measurement, BreakdownSnapshot, PmemStats) {
    let mem = Arc::new(MemorySpace::new(cfg.pmem_config(threads)));
    let engine = build_engine(kind, &mem, threads);
    let mix = workload.prepare(&mem);
    let before = mem.stats();
    let m = measure(
        engine.as_ref(),
        mix.as_ref(),
        threads,
        cfg.txns_per_thread,
        cfg.seed,
    );
    let breakdown = engine.breakdown();
    let pmem = mem.stats().since(&before);
    (m, breakdown, pmem)
}

/// Regenerates one figure: every engine at every thread count on the given
/// workload. Points are normalized later by the reporting layer.
pub fn run_figure(workload: &dyn Workload, cfg: &HarnessConfig) -> Figure {
    let mut figure = Figure::new(workload.name());
    for &kind in &cfg.engines {
        for &threads in &cfg.thread_counts {
            let (m, _, _) = run_point(workload, kind, threads, cfg);
            figure.push(m);
        }
    }
    figure
}

/// Collects the per-engine breakdowns (Figures 9–21) for one workload at a
/// single thread count.
pub fn run_breakdowns(
    workload: &dyn Workload,
    threads: usize,
    cfg: &HarnessConfig,
) -> Vec<(String, BreakdownSnapshot)> {
    cfg.engines
        .iter()
        .map(|&kind| {
            let (_, breakdown, _) = run_point(workload, kind, threads, cfg);
            (kind.label().to_string(), breakdown)
        })
        .collect()
}

/// Average persistent writes per transaction for one workload (one cell of
/// Table 1), measured on the Crafty engine.
pub fn writes_per_txn(workload: &dyn Workload, threads: usize, cfg: &HarnessConfig) -> f64 {
    let (_, breakdown, _) = run_point(workload, EngineKind::Crafty, threads, cfg);
    breakdown.writes_per_txn()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_workloads::{BankWorkload, Contention};

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            engines: vec![EngineKind::NonDurable, EngineKind::Crafty],
            thread_counts: vec![1, 2],
            txns_per_thread: 50,
            latency: LatencyModel::instant(),
            persistent_words: 1 << 18,
            seed: 1,
        }
    }

    #[test]
    fn figure_collects_one_point_per_engine_and_thread_count() {
        let cfg = tiny();
        let workload = BankWorkload::paper(Contention::Medium, 2);
        let figure = run_figure(&workload, &cfg);
        assert_eq!(figure.points.len(), 4);
        assert_eq!(figure.engines().len(), 2);
        let series = figure.normalized_series("Crafty", "Non-durable");
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|&(_, v)| v > 0.0));
    }

    #[test]
    fn breakdowns_and_table1_cells_are_produced() {
        let cfg = tiny();
        let workload = BankWorkload::paper(Contention::Medium, 2);
        let breakdowns = run_breakdowns(&workload, 2, &cfg);
        assert_eq!(breakdowns.len(), 2);
        assert!(breakdowns.iter().all(|(_, b)| b.total_persistent() == 100));
        let w = writes_per_txn(&workload, 1, &cfg);
        assert!((w - 10.0).abs() < 0.5, "bank writes/txn ≈ 10, got {w}");
    }
}
