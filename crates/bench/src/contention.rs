//! The forced-fallback contention benchmark behind `BENCH_contention.json`.
//!
//! Every transaction is pushed through the software fallback
//! ([`CraftyConfig::with_force_fallback`]) so the two
//! [`FallbackPolicy`] designs are compared directly, with no hardware
//! fast path diluting the signal: a zipfian-skewed transfer mix over a
//! shared account array at 2–16 threads. Under the single global lock
//! every fallback serializes against every other, so throughput flatlines
//! (or degrades, from cacheline ping-pong) as threads are added; the
//! per-line policy locks only each transaction's write set, so
//! transactions with disjoint footprints — the common case even under
//! zipfian skew, given enough accounts — commit concurrently and
//! throughput scales.
//!
//! Every point runs the conservation-of-money audit after the sweep: the
//! account sum must be exactly `accounts × INITIAL` (wrapping transfers
//! preserve the sum only if no update is lost), and the hot-counter cell
//! every transaction increments must equal the total transaction count.
//! A point that fails its audit is reported with `conserved: false` and
//! the render panics — a benchmark that loses updates has no business
//! producing an artifact.

use std::sync::Arc;
use std::time::Instant;

use crafty_common::{PersistentTm, SplitMix64, Zipfian};
use crafty_core::{Crafty, CraftyConfig, FallbackPolicy};
use crafty_pmem::{LatencyModel, MemorySpace, PmemConfig};
use crafty_stats::Json;

use crate::round2;

/// Initial balance per account.
const INITIAL: u64 = 1_000;

/// Parameters of one contention sweep.
#[derive(Clone, Debug)]
pub struct ContentionConfig {
    /// Thread counts to sweep (the paper-style ladder, 2–16 by default).
    pub thread_counts: Vec<usize>,
    /// Transfer transactions per thread at each point.
    pub txns_per_thread: u64,
    /// Accounts in the shared array (each on its own line).
    pub accounts: u64,
    /// Zipfian skew of the account picks (`0.99` = YCSB-hot).
    pub theta: f64,
    /// Workload seed (fixed across policies so both see the same picks).
    pub seed: u64,
    /// Emulated NVM latency model.
    pub latency: LatencyModel,
}

impl ContentionConfig {
    /// A sweep small enough for CI smokes: 2/4/8 threads, a few thousand
    /// transactions per thread, instant persistence (the contention being
    /// measured is lock-word contention, not drain latency).
    pub fn quick() -> Self {
        ContentionConfig {
            thread_counts: vec![2, 4, 8],
            txns_per_thread: 2_000,
            accounts: 256,
            theta: 0.9,
            seed: 42,
            latency: LatencyModel::instant(),
        }
    }
}

/// One (policy, thread count) sample of the contention sweep.
#[derive(Clone, Debug)]
pub struct ContentionPoint {
    /// Fallback policy label (`"sgl"` or `"per-line"`).
    pub policy: &'static str,
    /// Worker thread count.
    pub threads: usize,
    /// Transfer transactions committed across all threads.
    pub transactions: u64,
    /// Transactions per second over the measured region.
    pub ops_per_sec: f64,
    /// Whether the conservation-of-money and exact-count audits passed.
    pub conserved: bool,
}

/// Runs one (policy, thread count) point: a fresh space and engine, the
/// zipfian transfer mix, and the conservation audit.
pub fn run_contention_point(
    cfg: &ContentionConfig,
    policy: FallbackPolicy,
    threads: usize,
) -> ContentionPoint {
    let mem = Arc::new(MemorySpace::new(PmemConfig {
        persistent_words: 1 << 18,
        volatile_words: 1 << 16,
        max_threads: threads + 1,
        latency: cfg.latency,
        ..PmemConfig::small_for_tests()
    }));
    let engine = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests()
            .with_max_threads(threads)
            .with_undo_log_entries(256)
            .with_fallback(policy)
            .with_force_fallback(true),
    ));
    let base = mem.reserve_persistent(cfg.accounts * 8);
    for i in 0..cfg.accounts {
        mem.write(base.add(i * 8), INITIAL);
        mem.clwb(0, base.add(i * 8));
    }
    let hot = mem.reserve_persistent(1);
    mem.write(hot, 0);
    mem.clwb(0, hot);
    mem.drain(0);

    let accounts = cfg.accounts;
    let theta = cfg.theta;
    let txns = cfg.txns_per_thread;
    let seed = cfg.seed;
    let t0 = Instant::now();
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let engine = Arc::clone(&engine);
            s.spawn(move |_| {
                let zipf = Zipfian::new(accounts, theta);
                let mut rng = SplitMix64::new(seed ^ (tid as u64 + 1).wrapping_mul(0x9E37));
                let mut thread = engine.register_thread(tid);
                for i in 0..txns {
                    let from = zipf.sample(&mut rng);
                    let to = zipf.sample(&mut rng);
                    let amount = rng.next_below(9) + 1;
                    // One transfer in 16 also bumps the shared hot counter,
                    // keeping a guaranteed-overlapping line in the mix
                    // without fully serializing the per-line policy.
                    let bump_hot = i % 16 == 0;
                    thread.execute(&mut |ops| {
                        let a = base.add(from * 8);
                        let b = base.add(to * 8);
                        let va = ops.read(a)?;
                        ops.write(a, va.wrapping_sub(amount))?;
                        let vb = ops.read(b)?;
                        ops.write(b, vb.wrapping_add(amount))?;
                        if bump_hot {
                            let h = ops.read(hot)?;
                            ops.write(hot, h + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("contention workers");
    let elapsed = t0.elapsed();
    engine.quiesce();

    let transactions = threads as u64 * cfg.txns_per_thread;
    let total: u64 = (0..cfg.accounts)
        .map(|i| mem.read(base.add(i * 8)))
        .fold(0u64, |s, v| s.wrapping_add(v));
    let expected_hot: u64 = threads as u64 * cfg.txns_per_thread.div_ceil(16);
    let conserved = total == cfg.accounts * INITIAL && mem.read(hot) == expected_hot;
    ContentionPoint {
        policy: policy.label(),
        threads,
        transactions,
        ops_per_sec: transactions as f64 / elapsed.as_secs_f64().max(1e-9),
        conserved,
    }
}

/// Runs the full sweep: both policies at every configured thread count.
pub fn run_contention(cfg: &ContentionConfig) -> Vec<ContentionPoint> {
    let mut points = Vec::new();
    for policy in [FallbackPolicy::Sgl, FallbackPolicy::PerLine] {
        for &threads in &cfg.thread_counts {
            points.push(run_contention_point(cfg, policy, threads));
        }
    }
    points
}

/// Renders the sweep as the `BENCH_contention.json` artifact. Panics if
/// any point failed its conservation audit — corrupt numbers must never
/// become a committed baseline.
pub fn render_contention_json(cfg: &ContentionConfig, points: &[ContentionPoint]) -> String {
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        assert!(
            p.conserved,
            "contention point ({}, {} threads) lost updates — not rendering",
            p.policy, p.threads
        );
        arr.push(
            Json::object()
                .with("policy", Json::from(p.policy))
                .with("threads", Json::from(p.threads))
                .with("transactions", Json::from(p.transactions))
                .with("ops_per_sec", Json::Float(round2(p.ops_per_sec)))
                .with("conserved", Json::Bool(p.conserved)),
        );
    }
    Json::object()
        .with(
            "benchmark",
            Json::from("forced-fallback zipfian transfers (sgl vs per-line)"),
        )
        .with(
            "config",
            Json::object()
                .with("txns_per_thread", Json::from(cfg.txns_per_thread))
                .with("accounts", Json::from(cfg.accounts))
                .with("theta", Json::Float(cfg.theta))
                .with("drain_latency_ns", Json::from(cfg.latency.drain_ns))
                .with("seed", Json::from(cfg.seed)),
        )
        .with("points", Json::Array(arr))
        .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_sweep_cleanly_and_render() {
        let cfg = ContentionConfig {
            thread_counts: vec![2, 4],
            txns_per_thread: 150,
            ..ContentionConfig::quick()
        };
        let points = run_contention(&cfg);
        assert_eq!(points.len(), 4);
        assert!(
            points.iter().all(|p| p.conserved),
            "audit failed: {points:?}"
        );
        assert!(points.iter().all(|p| p.ops_per_sec > 0.0));
        let json = render_contention_json(&cfg, &points);
        assert!(json.contains("\"policy\": \"per-line\""));
        assert!(json.contains("\"policy\": \"sgl\""));
        assert!(json.contains("\"conserved\": true"));
    }
}
