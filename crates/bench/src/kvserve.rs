//! The open-loop service benchmark behind `figures kvserve` and
//! `BENCH_kvserve.json`.
//!
//! Boots the networked KV front-end (`crafty-server`) over a prefilled
//! [`crafty_kv::ShardedKv`] on loopback, offers it an **open-loop**
//! schedule ([`crafty_workloads::openloop`]) at a sweep of arrival rates,
//! and reports latency percentiles (p50/p99/p999) per engine per rate.
//! Latency is measured from each operation's *intended* send time, so a
//! server that falls behind charges the backlog to the requests that
//! queued — coordinated omission stays visible, which is the entire point
//! of driving the store through a service instead of the closed-loop
//! driver.
//!
//! Three engine configurations bound the durability trade:
//!
//! * **Non-durable** — the floor: no persistence work at all.
//! * **Crafty** — per-transaction durability: every write drains before
//!   its ack, putting the full fence on every write's critical path.
//! * **Crafty+gc** — the server's group-commit window: a batch of
//!   pipelined writes shares one drain, issued before any of the batch's
//!   acks. Same durability statement per ack, amortized fence cost.
//!
//! The drain dominates the service time by construction (the default
//! [`KvServeConfig`] uses a deliberately expensive fence,
//! [`KvServeConfig::SERVICE_DRAIN_NS`]), so the per-txn vs group-commit
//! gap shows up above loopback and scheduler noise: as the arrival rate
//! climbs toward the per-transaction engine's capacity its queue — and
//! p99 — grows without bound, while the group-commit server amortizes the
//! same fences across naturally deepening pipelines and keeps its tail
//! flat. That crossing is the figure this benchmark exists to draw.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crafty_kv::{DirectOps, KvConfig, SessionTable, ShardedKv};
use crafty_pmem::{LatencyModel, MemorySpace, PmemConfig};
use crafty_server::{KvClient, KvServer, Request, ServerConfig};
use crafty_stats::{Json, LatencyHistogram};
use crafty_workloads::{build_engine, ArrivalProcess, EngineKind, OpKind, OpenLoopConfig};

use crate::{round2, round4};

/// The engine configurations the service benchmark sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KvServeEngine {
    /// No durability at all (the latency floor).
    NonDurable,
    /// Crafty with per-transaction durability: each write drains before
    /// its ack.
    Crafty,
    /// Crafty behind the server's group-commit window: one drain per
    /// pipelined batch.
    CraftyGc,
}

impl KvServeEngine {
    /// All three configurations, legend order.
    pub const ALL: [KvServeEngine; 3] = [
        KvServeEngine::NonDurable,
        KvServeEngine::Crafty,
        KvServeEngine::CraftyGc,
    ];

    /// The legend label.
    pub fn label(self) -> &'static str {
        match self {
            KvServeEngine::NonDurable => "Non-durable",
            KvServeEngine::Crafty => "Crafty",
            KvServeEngine::CraftyGc => "Crafty+gc",
        }
    }

    /// Parses a label as written on the command line.
    ///
    /// # Errors
    ///
    /// Names the unknown label and the legal ones.
    pub fn from_label(s: &str) -> Result<Self, String> {
        match s {
            "Non-durable" | "non-durable" | "nondurable" => Ok(KvServeEngine::NonDurable),
            "Crafty" | "crafty" => Ok(KvServeEngine::Crafty),
            "Crafty+gc" | "crafty+gc" | "crafty-gc" => Ok(KvServeEngine::CraftyGc),
            other => Err(format!(
                "unknown kvserve engine `{other}` (expected non-durable, crafty, or crafty-gc)"
            )),
        }
    }

    fn kind(self) -> EngineKind {
        match self {
            KvServeEngine::NonDurable => EngineKind::NonDurable,
            KvServeEngine::Crafty | KvServeEngine::CraftyGc => EngineKind::Crafty,
        }
    }

    fn group_commit(self) -> bool {
        matches!(self, KvServeEngine::CraftyGc)
    }
}

impl std::str::FromStr for KvServeEngine {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KvServeEngine::from_label(s)
    }
}

/// Parameters of one `kvserve` sweep.
#[derive(Clone, Debug)]
pub struct KvServeConfig {
    /// Engine configurations to sweep.
    pub engines: Vec<KvServeEngine>,
    /// Offered arrival rates (operations/second), one point per rate.
    pub rates: Vec<u64>,
    /// Operations per point.
    pub ops: u64,
    /// Prefilled record population (zipfian reads draw from it).
    pub records: u64,
    /// Client connections; the schedule round-robins across them.
    pub connections: usize,
    /// Server accept-and-serve workers.
    pub workers: usize,
    /// Percentage of operations that are reads.
    pub read_pct: u32,
    /// Zipfian skew of the key popularity.
    pub theta: f64,
    /// The arrival process (fixed-rate or Poisson).
    pub arrival: ArrivalProcess,
    /// Schedule and key-mix seed.
    pub seed: u64,
    /// Persistence latency model of the simulated NVM.
    pub latency: LatencyModel,
}

impl KvServeConfig {
    /// Drain cost of the default service configuration: 50 µs, an
    /// expensive fence (remote persistence domain, UPS-backed flush, or a
    /// replicated ack). Large on purpose — it puts the durability cost
    /// well above loopback RTT and scheduler jitter, so the per-txn vs
    /// group-commit ordering is a property of the design, not of the
    /// machine the benchmark happens to run on.
    pub const SERVICE_DRAIN_NS: u64 = 50_000;

    /// The default sweep: rates chosen around the per-transaction
    /// engine's drain-bound capacity (2 workers × 50 µs write fences ⇒
    /// roughly 80 k mixed ops/s), so the sweep crosses it while the
    /// group-commit server still has headroom.
    pub fn quick() -> Self {
        KvServeConfig {
            engines: KvServeEngine::ALL.to_vec(),
            rates: vec![20_000, 40_000, 80_000],
            ops: 12_000,
            records: 4_000,
            connections: 2,
            workers: 2,
            read_pct: 50,
            theta: crafty_common::YCSB_THETA,
            arrival: ArrivalProcess::Poisson,
            seed: 0x5E17,
            latency: LatencyModel {
                drain_ns: Self::SERVICE_DRAIN_NS,
                ..LatencyModel::nvm_300ns()
            },
        }
    }

    fn open_loop(&self, rate: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            rate_per_sec: rate,
            ops: self.ops,
            seed: self.seed,
            records: self.records,
            theta: self.theta,
            read_pct: self.read_pct,
            arrival: self.arrival,
        }
    }

    fn pmem_config(&self) -> PmemConfig {
        PmemConfig {
            persistent_words: 1 << 22,
            volatile_words: 1 << 20,
            max_threads: self.workers + 2,
            latency: self.latency,
            ..PmemConfig::benchmark()
        }
    }
}

/// One (engine, rate) sample: the latency distribution plus the served
/// throughput and batching the server actually achieved.
#[derive(Clone, Debug)]
pub struct KvServePoint {
    /// Engine legend label.
    pub engine: String,
    /// Offered arrival rate (ops/s).
    pub rate_per_sec: u64,
    /// Operations completed.
    pub ops: u64,
    /// Completed operations per wall-clock second (≤ offered rate when
    /// the server keeps up; the backlog drains after the schedule ends
    /// when it does not).
    pub achieved_rate: f64,
    /// Mean pipelined-batch depth the server saw (its group-commit
    /// amortization factor).
    pub mean_batch: f64,
    /// Batches the server shed with `Busy`. Nominal-load sweeps must keep
    /// this zero, or the tail percentiles describe a degraded server —
    /// `figures kvserve --assert-no-shed` turns that into a hard failure.
    pub shed_batches: u64,
    /// The full latency distribution, measured from intended send times.
    pub latency: LatencyHistogram,
}

impl KvServePoint {
    /// `(p50, p99, p999)` in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.latency.percentile(0.50),
            self.latency.percentile(0.99),
            self.latency.percentile(0.999),
        )
    }
}

/// Runs the full sweep: every engine at every rate, a fresh memory space
/// and server per point (like the paper's per-point process runs).
pub fn run_kvserve(cfg: &KvServeConfig) -> Vec<KvServePoint> {
    let mut points = Vec::new();
    for &engine in &cfg.engines {
        for &rate in &cfg.rates {
            points.push(run_kvserve_point(cfg, engine, rate));
        }
    }
    points
}

/// Runs one (engine, rate) point end to end: boot, prefill, serve the
/// schedule open-loop, shut down, verify store integrity.
pub fn run_kvserve_point(cfg: &KvServeConfig, engine: KvServeEngine, rate: u64) -> KvServePoint {
    let mem = Arc::new(MemorySpace::new(cfg.pmem_config()));
    let tm: Arc<dyn crafty_common::PersistentTm> =
        Arc::from(build_engine(engine.kind(), &mem, cfg.workers));
    let kv = ShardedKv::create(&mem, &KvConfig::benchmark(cfg.records, 16));

    // Prefill the schedule's key population directly (setup time, not
    // measured), then persist so the run starts from a durable store.
    let schedule_cfg = cfg.open_loop(rate);
    {
        let mut ops = DirectOps::new(&mem);
        for rank in 0..cfg.records {
            let key = schedule_cfg.scrambled_key(rank);
            kv.put(&mut ops, key, crafty_common::mix64(key))
                .expect("direct prefill cannot abort");
        }
        kv.persist_all(&mem, 0);
    }

    let sessions = SessionTable::create(&mem, 64);
    let server = KvServer::start(
        Arc::clone(&tm),
        kv,
        sessions,
        ServerConfig::loopback(cfg.workers, engine.group_commit()),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    let schedule = Arc::new(schedule_cfg.schedule());
    let connections = cfg.connections.max(1);
    let start = Instant::now();
    let elapsed_ns = Arc::new(AtomicU64::new(0));

    // One sender + one receiver thread per connection; the schedule is
    // dealt round-robin so every connection carries the configured rate
    // share. Latency = receive time − intended send time.
    let histogram = std::thread::scope(|s| {
        let mut receivers = Vec::new();
        for conn in 0..connections {
            let client = KvClient::connect(addr).expect("connect load client");
            let mut tx = client.split().expect("split client");
            let mut rx = client;
            let send_schedule = Arc::clone(&schedule);
            let recv_schedule = Arc::clone(&schedule);
            let elapsed_ns = Arc::clone(&elapsed_ns);
            let my_ops: Vec<usize> = (conn..schedule.len()).step_by(connections).collect();
            let send_ops = my_ops.clone();
            s.spawn(move || {
                for &i in &send_ops {
                    let op = send_schedule[i];
                    // Wait for the intended send time (coarse sleep, fine
                    // spin); a late sender just fires immediately — the
                    // lateness is charged to the op's latency, not hidden.
                    loop {
                        let now = start.elapsed().as_nanos() as u64;
                        if now >= op.at_ns {
                            break;
                        }
                        let ahead = op.at_ns - now;
                        if ahead > 200_000 {
                            std::thread::sleep(Duration::from_nanos(ahead / 2));
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let req = match op.kind {
                        OpKind::Get { key } => Request::Get { key },
                        OpKind::Put { key, value } => Request::Put { key, value },
                    };
                    if tx.send(std::slice::from_ref(&req)).is_err() {
                        return;
                    }
                }
            });
            receivers.push(s.spawn(move || {
                let mut h = LatencyHistogram::new();
                for &i in &my_ops {
                    match rx.recv(1) {
                        Ok(_) => {
                            let now = start.elapsed().as_nanos() as u64;
                            h.record(now.saturating_sub(recv_schedule[i].at_ns));
                            elapsed_ns.fetch_max(now, Ordering::Relaxed);
                        }
                        Err(_) => return h,
                    }
                }
                h
            }));
        }
        let mut total = LatencyHistogram::new();
        for r in receivers {
            total.merge(&r.join().expect("receiver thread panicked"));
        }
        total
    });

    let stats = server.shutdown();
    tm.quiesce();
    kv.check_integrity(&mem)
        .unwrap_or_else(|e| panic!("store integrity after {} load: {e}", engine.label()));

    let wall_s = (elapsed_ns.load(Ordering::Relaxed).max(1)) as f64 / 1e9;
    KvServePoint {
        engine: engine.label().to_string(),
        rate_per_sec: rate,
        ops: histogram.count(),
        achieved_rate: histogram.count() as f64 / wall_s,
        mean_batch: stats.mean_batch(),
        shed_batches: stats.shed_batches,
        latency: histogram,
    }
}

/// Renders the sweep as the `BENCH_kvserve.json` artifact: one point per
/// (engine, rate) with the percentile columns the latency figures plot.
pub fn render_kvserve_json(cfg: &KvServeConfig, points: &[KvServePoint]) -> String {
    let mut arr = Vec::with_capacity(points.len());
    for p in points {
        let (p50, p99, p999) = p.percentiles();
        arr.push(
            Json::object()
                .with("engine", Json::from(p.engine.as_str()))
                .with("rate_per_sec", Json::from(p.rate_per_sec))
                .with("ops", Json::from(p.ops))
                .with("achieved_rate", Json::Float(round2(p.achieved_rate)))
                .with("mean_batch", Json::Float(round4(p.mean_batch)))
                .with("shed_batches", Json::from(p.shed_batches))
                .with("p50_ns", Json::UInt(p50))
                .with("p99_ns", Json::UInt(p99))
                .with("p999_ns", Json::UInt(p999))
                .with("mean_ns", Json::Float(round2(p.latency.mean())))
                .with("max_ns", Json::UInt(p.latency.max())),
        );
    }
    Json::object()
        .with("benchmark", Json::from("open-loop kv service"))
        .with(
            "config",
            Json::object()
                .with("ops", Json::from(cfg.ops))
                .with("records", Json::from(cfg.records))
                .with("connections", Json::from(cfg.connections))
                .with("workers", Json::from(cfg.workers))
                .with("read_pct", Json::from(cfg.read_pct as u64))
                .with("zipf_theta", Json::Float(cfg.theta))
                .with("arrival", Json::from(cfg.arrival.label()))
                .with("seed", Json::from(cfg.seed))
                .with("drain_latency_ns", Json::from(cfg.latency.drain_ns)),
        )
        .with("points", Json::Array(arr))
        .render_pretty()
}

/// Renders the human-readable table printed by `figures kvserve`.
pub fn render_kvserve_table(points: &[KvServePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>10} {:>12} {:>8} {:>10} {:>10} {:>10}\n",
        "engine", "rate/s", "achieved/s", "batch", "p50 µs", "p99 µs", "p999 µs"
    ));
    for p in points {
        let (p50, p99, p999) = p.percentiles();
        out.push_str(&format!(
            "{:<14} {:>10} {:>12.0} {:>8.2} {:>10.1} {:>10.1} {:>10.1}\n",
            p.engine,
            p.rate_per_sec,
            p.achieved_rate,
            p.mean_batch,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            p999 as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crafty_server::Response;

    fn tiny() -> KvServeConfig {
        KvServeConfig {
            engines: vec![KvServeEngine::NonDurable],
            rates: vec![50_000],
            ops: 400,
            records: 200,
            connections: 2,
            workers: 2,
            read_pct: 50,
            theta: 0.99,
            arrival: ArrivalProcess::Poisson,
            seed: 3,
            latency: LatencyModel::instant(),
        }
    }

    #[test]
    fn one_point_serves_the_whole_schedule() {
        let cfg = tiny();
        let p = run_kvserve_point(&cfg, KvServeEngine::NonDurable, 50_000);
        assert_eq!(p.ops, 400, "every scheduled op must be served and acked");
        assert_eq!(p.engine, "Non-durable");
        assert_eq!(p.shed_batches, 0, "nominal load must never shed");
        assert!(p.achieved_rate > 0.0);
        assert!(p.latency.percentile(0.99) >= p.latency.percentile(0.50));
        assert!(p.mean_batch >= 1.0);
    }

    #[test]
    fn labels_parse_round_trip() {
        for e in KvServeEngine::ALL {
            assert_eq!(KvServeEngine::from_label(e.label()).unwrap(), e);
        }
        assert_eq!(
            "crafty-gc".parse::<KvServeEngine>().unwrap(),
            KvServeEngine::CraftyGc
        );
        assert!("turbo".parse::<KvServeEngine>().is_err());
        assert!(KvServeEngine::CraftyGc.group_commit());
        assert!(!KvServeEngine::Crafty.group_commit());
    }

    #[test]
    fn json_and_table_carry_the_percentile_columns() {
        let cfg = tiny();
        let points = run_kvserve(&cfg);
        assert_eq!(points.len(), 1);
        let json = render_kvserve_json(&cfg, &points);
        for key in [
            "\"engine\"",
            "\"rate_per_sec\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"p999_ns\"",
            "\"mean_batch\"",
            "\"shed_batches\"",
            "\"arrival\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let table = render_kvserve_table(&points);
        assert!(table.contains("p999 µs"));
        assert!(table.contains("Non-durable"));
    }

    #[test]
    fn response_type_is_reexported_for_consumers() {
        // The bench crate's public surface should let a caller express
        // protocol-level assertions without importing crafty-server.
        let r = Response::Missing;
        assert_eq!(r, Response::Missing);
    }
}
