//! Micro-benchmarks of the simulated substrates: persist-operation cost in
//! the memory simulator and hardware-transaction overhead in the software
//! HTM. These bound how much of the end-to-end numbers is substrate
//! overhead rather than algorithm cost.

use std::sync::Arc;

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use crafty_common::{BreakdownRecorder, PAddr};
use crafty_htm::{HtmConfig, HtmRuntime};
use crafty_pmem::{LatencyModel, MemorySpace, PmemConfig};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));

    {
        let mem =
            MemorySpace::new(PmemConfig::small_for_tests().with_latency(LatencyModel::instant()));
        let a = mem.reserve_persistent(1);
        group.bench_function("pmem_write", |b| b.iter(|| mem.write(a, 1)));
        group.bench_function("pmem_flush_drain_no_latency", |b| {
            b.iter(|| {
                mem.write(a, 2);
                mem.persist(0, a);
            })
        });
    }
    {
        let mem =
            MemorySpace::new(PmemConfig::small_for_tests().with_latency(LatencyModel::nvm_300ns()));
        let a = mem.reserve_persistent(1);
        group.bench_function("pmem_flush_drain_300ns", |b| {
            b.iter(|| {
                mem.write(a, 2);
                mem.persist(0, a);
            })
        });
    }
    {
        let mem = Arc::new(MemorySpace::new(
            PmemConfig::small_for_tests().with_latency(LatencyModel::instant()),
        ));
        let htm = HtmRuntime::new(
            Arc::clone(&mem),
            HtmConfig::skylake(),
            Arc::new(BreakdownRecorder::new()),
        );
        let a = mem.reserve_persistent(8);
        group.bench_function("htm_txn_10_writes", |b| {
            b.iter(|| {
                let mut t = htm.begin(0);
                for i in 0..8u64 {
                    t.write(PAddr::new(a.word() + i), i).unwrap();
                }
                t.commit().unwrap();
            })
        });
        group.bench_function("htm_txn_read_only", |b| {
            b.iter(|| {
                let mut t = htm.begin(0);
                for i in 0..8u64 {
                    t.read(PAddr::new(a.word() + i)).unwrap();
                }
                t.commit().unwrap();
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
