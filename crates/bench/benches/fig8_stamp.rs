//! Criterion bench regenerating Figure 8: the STAMP-like kernels across
//! engines. Labyrinth is run with a reduced batch because its transactions
//! are two orders of magnitude larger than the others.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crafty_bench::{run_point, HarnessConfig};
use crafty_workloads::{EngineKind, StampKernel, StampWorkload};

fn bench_stamp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_stamp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for kernel in StampKernel::ALL {
        let txns = if kernel == StampKernel::Labyrinth {
            30
        } else {
            300
        };
        let cfg = HarnessConfig::quick().with_txns_per_thread(txns);
        let workload = StampWorkload::new(kernel);
        for engine in [
            EngineKind::NonDurable,
            EngineKind::NvHtm,
            EngineKind::DudeTm,
            EngineKind::Crafty,
            EngineKind::CraftyNoValidate,
            EngineKind::CraftyNoRedo,
        ] {
            for threads in [1usize, 4] {
                let id =
                    BenchmarkId::new(format!("{}/{}", kernel.label(), engine.label()), threads);
                group.bench_with_input(id, &threads, |b, &threads| {
                    b.iter(|| run_point(&workload, engine, threads, &cfg));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stamp);
criterion_main!(benches);
