//! Micro-benchmarks of Crafty's building blocks: the cost of one persistent
//! transaction through the Redo path, the Validate path (forced by the
//! NoRedo variant), the read-only fast path, and the SGL fallback. These
//! are the ablation numbers behind the design discussion in Sections 3–4.

use std::sync::Arc;

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use crafty_common::PersistentTm;
use crafty_core::{Crafty, CraftyConfig, CraftyVariant};
use crafty_htm::HtmConfig;
use crafty_pmem::{LatencyModel, MemorySpace, PmemConfig};

fn mem() -> Arc<MemorySpace> {
    Arc::new(MemorySpace::new(
        PmemConfig::small_for_tests().with_latency(LatencyModel::nvm_300ns()),
    ))
}

fn bench_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("crafty_phases");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));

    // Redo path: single thread, no contention → every transaction commits
    // through Redo.
    {
        let mem = mem();
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
        let cell = mem.reserve_persistent(1);
        let mut thread = crafty.register_thread(0);
        group.bench_function("update_via_redo", |b| {
            b.iter(|| {
                thread.execute(&mut |ops| {
                    let v = ops.read(cell)?;
                    ops.write(cell, v + 1)?;
                    Ok(())
                })
            })
        });
    }

    // Validate path: the NoRedo variant always re-executes and validates.
    {
        let mem = mem();
        let crafty = Crafty::new(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests().with_variant(CraftyVariant::NoRedo),
        );
        let cell = mem.reserve_persistent(1);
        let mut thread = crafty.register_thread(0);
        group.bench_function("update_via_validate", |b| {
            b.iter(|| {
                thread.execute(&mut |ops| {
                    let v = ops.read(cell)?;
                    ops.write(cell, v + 1)?;
                    Ok(())
                })
            })
        });
    }

    // Read-only fast path: no logging, no persisting.
    {
        let mem = mem();
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
        let cell = mem.reserve_persistent(1);
        let mut thread = crafty.register_thread(0);
        group.bench_function("read_only", |b| {
            b.iter(|| {
                thread.execute(&mut |ops| {
                    ops.read(cell)?;
                    Ok(())
                })
            })
        });
    }

    // SGL fallback: a tiny HTM forces capacity aborts, so every transaction
    // takes the buffered single-global-lock path.
    {
        let mem = mem();
        let crafty = Crafty::with_htm_config(
            Arc::clone(&mem),
            CraftyConfig::small_for_tests(),
            HtmConfig::tiny(),
        );
        let base = mem.reserve_persistent(256);
        let mut thread = crafty.register_thread(0);
        group.bench_function("sgl_fallback_64_writes", |b| {
            b.iter(|| {
                thread.execute(&mut |ops| {
                    for i in 0..64u64 {
                        ops.write(base.add(i), i)?;
                    }
                    Ok(())
                })
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
