//! Criterion bench regenerating Figure 7: the B+-tree microbenchmark
//! (insert-only and mixed operations) across engines and thread counts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crafty_bench::{run_point, HarnessConfig};
use crafty_workloads::{BtreeVariant, BtreeWorkload, EngineKind};

fn bench_btree(c: &mut Criterion) {
    let cfg = HarnessConfig::quick().with_txns_per_thread(300);
    let mut group = c.benchmark_group("fig7_btree");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for variant in [BtreeVariant::InsertOnly, BtreeVariant::Mixed] {
        let workload = BtreeWorkload::paper(variant);
        for engine in [
            EngineKind::NonDurable,
            EngineKind::NvHtm,
            EngineKind::DudeTm,
            EngineKind::Crafty,
        ] {
            for threads in [1usize, 2, 4] {
                let id = BenchmarkId::new(format!("{variant:?}/{}", engine.label()), threads);
                group.bench_with_input(id, &threads, |b, &threads| {
                    b.iter(|| run_point(&workload, engine, threads, &cfg));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
