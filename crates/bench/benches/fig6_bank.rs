//! Criterion bench regenerating Figure 6: the bank microbenchmark at the
//! paper's three contention levels, every engine, at a reduced scale.
//!
//! Each Criterion sample runs a complete (engine, threads) measurement on a
//! fresh memory space; the measured quantity is the wall-clock time of the
//! fixed transaction batch (throughput = batch size / time, as in the
//! paper). Run `cargo run -p crafty-bench --bin figures -- fig6 --paper`
//! for the full-scale sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use crafty_bench::{run_point, HarnessConfig};
use crafty_workloads::{BankWorkload, Contention, EngineKind};

fn bench_bank(c: &mut Criterion) {
    let cfg = HarnessConfig::quick().with_txns_per_thread(300);
    let mut group = c.benchmark_group("fig6_bank");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for contention in [Contention::High, Contention::Medium, Contention::None] {
        let workload = BankWorkload::paper(contention, 4);
        for engine in EngineKind::ALL {
            for threads in [1usize, 2, 4] {
                let id = BenchmarkId::new(
                    format!("{}/{}", workload.contention.label(), engine.label()),
                    threads,
                );
                group.bench_with_input(id, &threads, |b, &threads| {
                    b.iter(|| run_point(&workload, engine, threads, &cfg));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bank);
criterion_main!(benches);
