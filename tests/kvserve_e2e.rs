//! End-to-end tests of the networked KV service front-end: protocol round
//! trips over a real loopback socket, pipelined batches, and — the
//! durability contract the server exists to honour — killing the machine
//! mid-load and verifying that every write the server *acknowledged*
//! survives recovery, under the strict and the adversarial crash models.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crafty_repro::prelude::*;

const WORKERS: usize = 2;

fn pmem_cfg(model: CrashModel) -> PmemConfig {
    PmemConfig {
        persistent_words: 1 << 18,
        volatile_words: 1 << 14,
        max_threads: WORKERS + 2,
        latency: LatencyModel::instant(),
        // The model governs the whole run (spontaneous evictions, for the
        // models that have them), not just the final crash.
        crash: model,
        ..PmemConfig::small_for_tests()
    }
}

fn crafty_cfg() -> CraftyConfig {
    CraftyConfig::small_for_tests().with_max_threads(WORKERS)
}

fn kv_cfg() -> KvConfig {
    KvConfig::small_for_tests()
        .with_shards(2)
        .with_initial_capacity(64)
        .with_arena_words(1 << 15)
}

#[test]
fn round_trips_and_pipelining_over_loopback() {
    let mem = Arc::new(MemorySpace::new(pmem_cfg(CrashModel::strict())));
    let crafty = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let sessions = SessionTable::create(&mem, 16);
    let engine: Arc<dyn PersistentTm> = Arc::new(crafty);
    let server = KvServer::start(
        Arc::clone(&engine),
        kv,
        sessions,
        ServerConfig::loopback(WORKERS, true),
    )
    .expect("server starts");

    let mut client = KvClient::connect(server.local_addr()).expect("connect");

    // Single-request round trips of every opcode.
    assert_eq!(client.put(7, 700).expect("put"), None);
    assert_eq!(client.put(7, 701).expect("put"), Some(700));
    assert_eq!(client.get(7).expect("get"), Some(701));
    assert_eq!(client.get(8).expect("get"), None);
    assert_eq!(client.delete(7).expect("delete"), Some(701));
    assert_eq!(client.get(7).expect("get"), None);
    client.flush().expect("flush");

    // A pipelined batch: 32 puts sent in one burst, responses read in
    // order. Acks arrive only after the batch's durability fence.
    let keys: Vec<u64> = (0..32).map(|i| 1_000 + i).collect();
    let requests: Vec<Request> = keys
        .iter()
        .map(|&k| Request::Put {
            key: k,
            value: k * 3,
        })
        .collect();
    client.send(&requests).expect("pipelined send");
    let responses = client.recv(requests.len()).expect("pipelined recv");
    assert_eq!(responses.len(), 32);
    assert!(
        responses.iter().all(|r| *r == Response::Missing),
        "all pipelined keys were fresh"
    );
    for &k in &keys {
        assert_eq!(client.get(k).expect("get"), Some(k * 3));
    }
    // The key's shard holds entries, so a bounded scan finds at least one.
    let (count, _sum) = client.scan(1_000, 8).expect("scan");
    assert!((1..=8).contains(&count), "scan found {count} entries");

    let stats = server.shutdown();
    assert!(stats.connections >= 1);
    // 6 singles + flush + 32 pipelined + 32 gets + scan.
    assert!(stats.requests >= 72, "served {} requests", stats.requests);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
    assert!(stats.flushes >= 1, "write batches must fence");
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.mean_batch() >= 1.0);
}

/// The durability contract under fire: loader threads stream puts with
/// unique keys through real connections, recording each pair only once its
/// ack has arrived; mid-load we pull the plug (snapshot a crash image with
/// the server still running), recover it, and require every pair acked
/// *before* the snapshot to be present with its exact value. Ack-after-
/// fence makes this sound: the ack is written only after the batch's drain
/// barrier and its `persist_fence` pin, so an acked write can never be
/// taken back by recovery's latest-sequence rollback.
fn acked_writes_survive_mid_load_crash(model: CrashModel) {
    const OPS_PER_LOADER: u64 = 250;
    const CRASH_AFTER_ACKS: usize = 100;

    let mem = Arc::new(MemorySpace::new(pmem_cfg(model)));
    let crafty = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let directory = crafty.directory_addr();
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let sessions = SessionTable::create(&mem, 16);
    let engine: Arc<dyn PersistentTm> = Arc::new(crafty);
    let server = KvServer::start(
        Arc::clone(&engine),
        kv,
        sessions,
        ServerConfig::loopback(WORKERS, true),
    )
    .expect("server starts");
    let addr = server.local_addr();

    let acked: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let halt = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..WORKERS as u64)
        .map(|c| {
            let acked = Arc::clone(&acked);
            let halt = Arc::clone(&halt);
            std::thread::spawn(move || {
                let mut client = KvClient::connect(addr).expect("loader connects");
                for i in 0..OPS_PER_LOADER {
                    if halt.load(Ordering::Relaxed) {
                        break;
                    }
                    let key = c * 1_000_000 + i;
                    let value = key ^ 0x5AFE_F00D;
                    if client.put(key, value).is_err() {
                        break; // server shut down under us
                    }
                    acked.lock().unwrap().push((key, value));
                }
            })
        })
        .collect();

    // Let real load build up, then photograph the power failure while the
    // server is still serving. Every pair in the snapshot was acked — and
    // therefore fenced — strictly before the image was taken.
    while acked.lock().unwrap().len() < CRASH_AFTER_ACKS {
        std::thread::yield_now();
    }
    let snapshot: Vec<(u64, u64)>;
    let mut image: PersistentImage;
    {
        let guard = acked.lock().unwrap();
        snapshot = guard.clone();
        image = mem.crash_with(model);
    }
    assert!(snapshot.len() >= CRASH_AFTER_ACKS);

    // Wind the first life down (it no longer matters to the verdict).
    halt.store(true, Ordering::Relaxed);
    for l in loaders {
        l.join().expect("loader");
    }
    server.shutdown();

    // Second life: recover the image, reboot, replay the reservation
    // sequence (engine first, store second), and audit.
    recover(&mut image, directory).expect("recovery");
    let rebooted = Arc::new(MemorySpace::boot(&image, pmem_cfg(CrashModel::strict())));
    let crafty2 = Crafty::new(Arc::clone(&rebooted), crafty_cfg());
    let kv2 = ShardedKv::open(&rebooted, &kv_cfg());
    kv2.check_integrity(&rebooted)
        .unwrap_or_else(|e| panic!("recovered store failed integrity: {e}"));
    for &(key, value) in &snapshot {
        assert_eq!(
            kv2.get_direct(&rebooted, key),
            Some(value),
            "acked key {key} lost or corrupted by the crash"
        );
    }

    // The recovered store keeps serving: new writes land next to the
    // survivors.
    let mut thread = crafty2.register_thread(0);
    thread.execute(&mut |ops| kv2.put(ops, 9_999_999, 42).map(|_| ()));
    crafty2.quiesce();
    assert_eq!(kv2.get_direct(&rebooted, 9_999_999), Some(42));
    kv2.check_integrity(&rebooted)
        .unwrap_or_else(|e| panic!("post-recovery store failed integrity: {e}"));
}

#[test]
fn acked_writes_survive_mid_load_crash_strict() {
    acked_writes_survive_mid_load_crash(CrashModel::strict());
}

#[test]
fn acked_writes_survive_mid_load_crash_adversarial() {
    for seed in 0..3 {
        acked_writes_survive_mid_load_crash(CrashModel::adversarial(seed));
    }
}
