//! Workspace-level crash-consistency tests: run real workloads on Crafty,
//! crash at an arbitrary point under an adversarial persistence model, run
//! the recovery observer, and check application invariants on the recovered
//! image. Property-based cases sweep seeds, thread counts, and crash
//! models.

use std::sync::Arc;

use crafty_common::SplitMix64;
use crafty_core::recover;
use crafty_pmem::PersistentImage;
use crafty_repro::prelude::*;
use crafty_repro::workloads::{BankWorkload, Contention};
use proptest::prelude::*;

/// Runs a multi-threaded bank run on Crafty, crashes without quiescing,
/// recovers, and returns (expected total, recovered total).
fn bank_crash_run(
    seed: u64,
    threads: usize,
    txns_per_thread: u64,
    crash: CrashModel,
    variant: CraftyVariant,
) -> (u64, u64) {
    let pmem_cfg = PmemConfig {
        persistent_words: 1 << 18,
        volatile_words: 1 << 14,
        max_threads: threads + 2,
        latency: LatencyModel::instant(),
        crash,
        ..PmemConfig::small_for_tests()
    };
    let mem = Arc::new(MemorySpace::new(pmem_cfg));
    let crafty_cfg = CraftyConfig {
        variant,
        undo_log_entries: 512,
        ..CraftyConfig::small_for_tests().with_max_threads(threads)
    };
    let crafty = Arc::new(Crafty::new(Arc::clone(&mem), crafty_cfg));
    let workload = BankWorkload {
        contention: Contention::High,
        transfers_per_txn: 3,
        initial_balance: 500,
        max_threads: threads,
    };
    let mix = crafty_repro::workloads::Workload::prepare(&workload, &mem);

    crossbeam::scope(|s| {
        for tid in 0..threads {
            let crafty = Arc::clone(&crafty);
            let mix = &mix;
            s.spawn(move |_| {
                let mut handle = crafty.register_thread(tid);
                let mut rng = SplitMix64::new(seed.wrapping_mul(31).wrapping_add(tid as u64));
                for i in 0..txns_per_thread {
                    handle.execute(&mut |ops| mix.run_txn(tid, i, &mut rng, ops));
                }
            });
        }
    })
    .expect("worker threads");

    // Crash mid-steady-state (no quiesce), then recover.
    let mut image = mem.crash();
    recover(&mut image, crafty.directory_addr()).expect("recovery");

    // The bank accounts are the first reservation the workload made; to
    // read them from the image we reconstruct the address the same way the
    // workload did, by booting the image and re-preparing the layout on a
    // fresh (identically configured) space.
    let expected = 1024 * 500; // high contention = 1024 accounts
    let total = bank_total_in_image(&image, &mem, &workload);
    (expected, total)
}

/// Sums the bank accounts inside a recovered image. The account region's
/// address is recomputed by replaying the same reservations on a scratch
/// space (reservation order is deterministic).
fn bank_total_in_image(
    image: &PersistentImage,
    original: &Arc<MemorySpace>,
    workload: &BankWorkload,
) -> u64 {
    // The workload reserved its accounts immediately after the Crafty
    // engine's reservations; replaying the same constructor calls on a
    // fresh space yields the same layout.
    let scratch = Arc::new(MemorySpace::new(*original.config()));
    let _engine = Crafty::new(
        Arc::clone(&scratch),
        CraftyConfig {
            variant: CraftyVariant::Full,
            undo_log_entries: 512,
            ..CraftyConfig::small_for_tests().with_max_threads(original.config().max_threads - 2)
        },
    );
    let mix = crafty_repro::workloads::Workload::prepare(workload, &scratch);
    // Find the account values by diffing: the scratch space has the fresh
    // initial balances at the account addresses; read the same addresses
    // from the crashed image.
    let accounts = 1024u64;
    let mut base = None;
    for w in 0..scratch.persistent_words() {
        if scratch.read(crafty_common::PAddr::new(w)) == 500
            && scratch.read(crafty_common::PAddr::new(w + 8)) == 500
        {
            base = Some(w);
            break;
        }
    }
    let base = base.expect("account region in scratch layout");
    drop(mix);
    (0..accounts)
        .map(|i| image.read(crafty_common::PAddr::new(base + i * 8)))
        .sum()
}

#[test]
fn bank_invariant_survives_a_strict_crash() {
    let (expected, total) = bank_crash_run(1, 3, 150, CrashModel::strict(), CraftyVariant::Full);
    assert_eq!(total, expected);
}

#[test]
fn bank_invariant_survives_an_adversarial_crash() {
    for seed in 0..4 {
        let (expected, total) = bank_crash_run(
            seed,
            3,
            150,
            CrashModel::adversarial(seed),
            CraftyVariant::Full,
        );
        assert_eq!(total, expected, "seed {seed}");
    }
}

#[test]
fn ablation_variants_are_also_crash_consistent() {
    for variant in [CraftyVariant::NoRedo, CraftyVariant::NoValidate] {
        let (expected, total) = bank_crash_run(7, 2, 120, CrashModel::adversarial(7), variant);
        assert_eq!(total, expected, "{variant:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzz seeds, thread counts, and word-persist probabilities: the
    /// recovered bank is always balanced.
    #[test]
    fn recovered_bank_is_always_balanced(
        seed in 0u64..1_000,
        threads in 1usize..4,
        persist_prob in 0.0f64..1.0,
    ) {
        let crash = CrashModel {
            eviction_probability: 0.01,
            dirty_word_persist_probability: persist_prob,
            seed,
        };
        let (expected, total) = bank_crash_run(seed, threads, 80, crash, CraftyVariant::Full);
        prop_assert_eq!(total, expected);
    }

    /// A committed-and-quiesced counter value is never lost, and the
    /// recovered value never exceeds what was executed.
    #[test]
    fn recovered_counter_is_a_consistent_prefix(seed in 0u64..1_000, committed in 1u64..60) {
        let mem = Arc::new(MemorySpace::new(PmemConfig {
            persistent_words: 1 << 16,
            volatile_words: 1 << 13,
            max_threads: 4,
            latency: LatencyModel::instant(),
            crash: CrashModel::adversarial(seed),
            ..PmemConfig::small_for_tests()
        }));
        let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests().with_max_threads(2));
        let cell = mem.reserve_persistent(1);
        let mut thread = crafty.register_thread(0);
        for _ in 0..committed {
            thread.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 1)?;
                Ok(())
            });
        }
        crafty.quiesce();
        // A little more uncommitted-at-crash work.
        for _ in 0..5 {
            thread.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 1)?;
                Ok(())
            });
        }
        let mut image = mem.crash();
        recover(&mut image, crafty.directory_addr()).expect("recovery");
        let recovered = image.read(cell);
        prop_assert!(recovered >= committed, "quiesced work lost: {recovered} < {committed}");
        prop_assert!(recovered <= committed + 5);
    }
}
