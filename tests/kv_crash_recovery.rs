//! Crash consistency of the sharded KV store, including mid-resize: drive
//! the store with Crafty until a shard's incremental rehash is in flight,
//! crash under strict and relaxed (word-lossy) persistence models, run the
//! recovery observer, reboot, reattach — every committed key/value pair
//! must survive exactly, no aborted or post-quiesce partial write may be
//! visible, and the half-migrated shard must finish its resize and keep
//! serving.

use std::collections::HashMap;
use std::sync::Arc;

use crafty_core::recover;
use crafty_repro::prelude::*;

const SHARDS: usize = 2;

fn pmem_cfg(model: CrashModel) -> PmemConfig {
    PmemConfig {
        persistent_words: 1 << 18,
        volatile_words: 1 << 14,
        max_threads: 4,
        latency: LatencyModel::instant(),
        // The model governs the whole run (spontaneous evictions, for the
        // models that have them), not just the final crash.
        crash: model,
        ..PmemConfig::small_for_tests()
    }
}

fn crafty_cfg() -> CraftyConfig {
    CraftyConfig::small_for_tests().with_max_threads(2)
}

fn kv_cfg() -> KvConfig {
    // Small initial tables so inserts reach a resize within a few dozen
    // transactions, but larger than one migration batch so the rehash
    // stays in flight across several mutations (the crash lands with
    // entries genuinely split across the old and new tables); the arena
    // has room for the full doubling schedule.
    KvConfig::small_for_tests()
        .with_shards(SHARDS)
        .with_initial_capacity(32)
        .with_arena_words(1 << 13)
}

/// Runs the scenario under one crash model and checks every guarantee.
/// `seed` varies the key stream and the crash model's word lottery.
fn crash_mid_rehash_and_recover(model: CrashModel, seed: u64) {
    // --- First life: load the store until a rehash is mid-flight. -------
    let mem = Arc::new(MemorySpace::new(pmem_cfg(model)));
    let crafty = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let mut committed: HashMap<u64, u64> = HashMap::new();
    let mut thread = crafty.register_thread(0);
    let mut key_stream = crafty_repro::common::SplitMix64::new(seed);

    // Insert until some shard has a resize in flight, then a few more so
    // the migration cursor sits strictly inside the old table.
    let mut after_resize_started = 0;
    while after_resize_started < 3 {
        let key = key_stream.next_below(1 << 20);
        let value = key ^ 0xC0FFEE ^ seed;
        thread.execute(&mut |ops| kv.put(ops, key, value).map(|_| ()));
        committed.insert(key, value);
        if kv.resize_in_flight(&mem) {
            after_resize_started += 1;
        }
        assert!(
            committed.len() < 10_000,
            "store never started a resize; sizing bug in the test"
        );
    }
    assert!(kv.resize_in_flight(&mem), "must crash mid-rehash");

    // Everything committed so far must survive: quiesce pins it (Crafty's
    // durability guarantee is prefix-consistency for unquiesced work).
    crafty.quiesce();

    // Post-quiesce, pre-crash turbulence: updates of existing keys and
    // brand-new inserts that are *not* quiesced. Each may survive the crash
    // atomically or be rolled back — but nothing in between.
    let update_key = *committed.keys().next().expect("store is loaded");
    let old_update_value = committed[&update_key];
    let new_update_value = old_update_value ^ 0xDEAD_BEEF;
    thread.execute(&mut |ops| kv.put(ops, update_key, new_update_value).map(|_| ()));
    let fresh_keys: Vec<u64> = (0..4).map(|i| (1 << 21) + seed * 131 + i).collect();
    for &k in &fresh_keys {
        thread.execute(&mut |ops| kv.put(ops, k, k ^ 0xF00D).map(|_| ()));
    }

    // --- Power failure. -------------------------------------------------
    let mut image = mem.crash_with(model);
    recover(&mut image, crafty.directory_addr()).expect("recovery");

    // --- Second life: reboot, replay constructors, reattach. ------------
    // The second life runs under the strict model: the crash already
    // happened; what matters now is exact behaviour on the recovered data.
    let rebooted = Arc::new(MemorySpace::boot(&image, pmem_cfg(CrashModel::strict())));
    let crafty2 = Crafty::new(Arc::clone(&rebooted), crafty_cfg());
    let kv2 = ShardedKv::open(&rebooted, &kv_cfg());

    kv2.check_integrity(&rebooted)
        .unwrap_or_else(|e| panic!("recovered store failed integrity: {e}"));

    // Every committed (quiesced) pair survives with its exact value...
    for (&key, &value) in &committed {
        if key == update_key {
            continue; // checked separately below
        }
        assert_eq!(
            kv2.get_direct(&rebooted, key),
            Some(value),
            "committed key {key} lost or corrupted"
        );
    }
    // ...the unquiesced update is all-or-nothing...
    let recovered_update = kv2.get_direct(&rebooted, update_key);
    assert!(
        recovered_update == Some(old_update_value) || recovered_update == Some(new_update_value),
        "update was torn: {recovered_update:?}"
    );
    // ...and unquiesced inserts are present-with-correct-value or absent.
    for &k in &fresh_keys {
        let got = kv2.get_direct(&rebooted, k);
        assert!(
            got.is_none() || got == Some(k ^ 0xF00D),
            "partial insert visible for key {k}: {got:?}"
        );
    }
    // No phantom keys: everything live in the store was committed by us.
    for (key, _) in kv2.collect_pairs(&rebooted) {
        assert!(
            committed.contains_key(&key) || fresh_keys.contains(&key),
            "aborted or phantom key {key} is visible after recovery"
        );
    }

    // --- Third life: the half-migrated shard keeps serving and finishes
    // its rehash under new transactions.
    let mut thread2 = crafty2.register_thread(0);
    let mut extra = 0u64;
    while kv2.resize_in_flight(&rebooted) {
        let key = (1 << 22) + extra;
        thread2.execute(&mut |ops| kv2.put(ops, key, key + 7).map(|_| ()));
        extra += 1;
        assert!(extra < 10_000, "post-recovery rehash never completed");
    }
    crafty2.quiesce();
    kv2.check_integrity(&rebooted)
        .unwrap_or_else(|e| panic!("post-recovery store failed integrity: {e}"));
    for (&key, &value) in &committed {
        if key == update_key {
            continue;
        }
        assert_eq!(
            kv2.get_direct(&rebooted, key),
            Some(value),
            "key {key} lost while finishing the recovered rehash"
        );
    }
    for i in 0..extra {
        let key = (1 << 22) + i;
        assert_eq!(kv2.get_direct(&rebooted, key), Some(key + 7));
    }
}

/// Group commit's crash contract: a batch applied through
/// `ShardedKv::apply_batch` whose shared drain barrier *has* run survives
/// a crash in full (up to the engine's latest-sequence rollback, pinned by
/// a trailing quiesce); a batch of deferred transactions whose barrier has
/// NOT run may lose transactions, but each one atomically — every
/// recovered value is either the pre-batch or the post-batch value, never
/// torn, and the store stays structurally intact.
fn group_commit_batch_crash(model: CrashModel, seed: u64) {
    let mem = Arc::new(MemorySpace::new(pmem_cfg(model)));
    let crafty = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let mut thread = crafty.register_thread(0);

    // Acked batch: apply_batch issues the barrier; quiesce then pins the
    // thread's latest sequence so recovery cannot roll the tail back.
    let acked: Vec<(u64, u64)> = (0..32).map(|i| (seed * 977 + i, i * 3 + 1)).collect();
    kv.apply_batch(&mut *thread, &acked);
    crafty.quiesce();

    // Unacked batch: deferred transactions with no barrier — overwrite
    // half the acked keys and add fresh ones, then pull the plug.
    let overwritten: Vec<(u64, u64)> = acked.iter().take(16).map(|&(k, v)| (k, v + 500)).collect();
    let fresh: Vec<(u64, u64)> = (0..8).map(|i| ((1 << 23) + seed * 31 + i, i + 9)).collect();
    for &(k, v) in overwritten.iter().chain(&fresh) {
        thread.execute_deferred(&mut |ops| kv.put(ops, k, v).map(|_| ()));
    }
    // No flush_deferred: crash with the group's durability unacked.
    let mut image = mem.crash_with(model);
    recover(&mut image, crafty.directory_addr()).expect("recovery");

    let rebooted = Arc::new(MemorySpace::boot(&image, pmem_cfg(CrashModel::strict())));
    // Replay the reservation sequence of the first life (engine first,
    // store second) so the store attaches at the same addresses.
    let _crafty2 = Crafty::new(Arc::clone(&rebooted), crafty_cfg());
    let kv2 = ShardedKv::open(&rebooted, &kv_cfg());
    kv2.check_integrity(&rebooted)
        .unwrap_or_else(|e| panic!("recovered store failed integrity: {e}"));

    // The acked batch survives in full; keys the unacked batch overwrote
    // hold exactly one of the two committed values.
    let overwritten_keys: Vec<u64> = overwritten.iter().map(|&(k, _)| k).collect();
    for &(k, v) in &acked {
        let got = kv2.get_direct(&rebooted, k);
        if overwritten_keys.contains(&k) {
            assert!(
                got == Some(v) || got == Some(v + 500),
                "unacked overwrite of key {k} tore: {got:?}"
            );
        } else {
            assert_eq!(got, Some(v), "acked key {k} lost or corrupted");
        }
    }
    // Unacked fresh inserts: present with the exact value, or absent.
    for &(k, v) in &fresh {
        let got = kv2.get_direct(&rebooted, k);
        assert!(
            got.is_none() || got == Some(v),
            "partial unacked insert visible for key {k}: {got:?}"
        );
    }
}

/// Double-crash contract: a store that has already been crashed and
/// recovered once offers the same durability guarantees in its second
/// life. Committed-and-quiesced pairs from *both* lives survive the second
/// crash exactly; unquiesced turbulence before either crash is
/// all-or-nothing; and the store stays structurally intact throughout.
fn double_crash_and_recover(model: CrashModel, seed: u64) {
    // --- First life: committed base load, turbulence, crash. ------------
    let mem = Arc::new(MemorySpace::new(pmem_cfg(model)));
    let crafty = Crafty::new(Arc::clone(&mem), crafty_cfg());
    let kv = ShardedKv::create(&mem, &kv_cfg());
    let mut thread = crafty.register_thread(0);
    let first_pairs: Vec<(u64, u64)> = (0..24).map(|i| (seed * 613 + i, i * 11 + 1)).collect();
    for &(k, v) in &first_pairs {
        thread.execute(&mut |ops| kv.put(ops, k, v).map(|_| ()));
    }
    crafty.quiesce();
    // Unquiesced tail: may survive atomically or roll back.
    let tail1: Vec<u64> = (0..3).map(|i| (1 << 24) + seed * 17 + i).collect();
    for &k in &tail1 {
        thread.execute(&mut |ops| kv.put(ops, k, k ^ 0xAAAA).map(|_| ()));
    }
    drop(thread);
    let mut image = mem.crash_with(model);
    recover(&mut image, crafty.directory_addr()).expect("first recovery");

    // --- Second life: reboot, verify, more committed work, crash again. -
    let mem2 = Arc::new(MemorySpace::boot(&image, pmem_cfg(model)));
    let crafty2 = Crafty::new(Arc::clone(&mem2), crafty_cfg());
    let kv2 = ShardedKv::open(&mem2, &kv_cfg());
    kv2.check_integrity(&mem2)
        .unwrap_or_else(|e| panic!("store failed integrity after first crash: {e}"));
    for &(k, v) in &first_pairs {
        assert_eq!(
            kv2.get_direct(&mem2, k),
            Some(v),
            "first-life committed key {k} lost in the first crash"
        );
    }
    let mut thread2 = crafty2.register_thread(0);
    let second_pairs: Vec<(u64, u64)> = (0..24)
        .map(|i| ((1 << 25) + seed * 419 + i, i * 7 + 3))
        .collect();
    for &(k, v) in &second_pairs {
        thread2.execute(&mut |ops| kv2.put(ops, k, v).map(|_| ()));
    }
    // Also overwrite a first-life key, committed and quiesced: the second
    // crash must keep the *new* value.
    let (rewrite_key, _) = first_pairs[0];
    let rewrite_value = 0xBEEF ^ seed;
    thread2.execute(&mut |ops| kv2.put(ops, rewrite_key, rewrite_value).map(|_| ()));
    crafty2.quiesce();
    let tail2: Vec<u64> = (0..3).map(|i| (1 << 26) + seed * 23 + i).collect();
    for &k in &tail2 {
        thread2.execute(&mut |ops| kv2.put(ops, k, k ^ 0xBBBB).map(|_| ()));
    }
    drop(thread2);
    let mut image2 = mem2.crash_with(model);
    recover(&mut image2, crafty2.directory_addr()).expect("second recovery");

    // --- Third life: everything quiesced in either life survives. -------
    let mem3 = Arc::new(MemorySpace::boot(&image2, pmem_cfg(CrashModel::strict())));
    let _crafty3 = Crafty::new(Arc::clone(&mem3), crafty_cfg());
    let kv3 = ShardedKv::open(&mem3, &kv_cfg());
    kv3.check_integrity(&mem3)
        .unwrap_or_else(|e| panic!("store failed integrity after second crash: {e}"));
    for &(k, v) in &first_pairs {
        let expect = if k == rewrite_key { rewrite_value } else { v };
        assert_eq!(
            kv3.get_direct(&mem3, k),
            Some(expect),
            "first-life key {k} lost or stale after the second crash"
        );
    }
    for &(k, v) in &second_pairs {
        assert_eq!(
            kv3.get_direct(&mem3, k),
            Some(v),
            "second-life committed key {k} lost in the second crash"
        );
    }
    for &k in tail1.iter().chain(&tail2) {
        let got = kv3.get_direct(&mem3, k);
        let expect1 = k ^ 0xAAAA;
        let expect2 = k ^ 0xBBBB;
        assert!(
            got.is_none() || got == Some(expect1) || got == Some(expect2),
            "unquiesced key {k} tore across a crash: {got:?}"
        );
    }
}

#[test]
fn double_crash_recovers_under_strict_model() {
    double_crash_and_recover(CrashModel::strict(), 1);
}

#[test]
fn double_crash_recovers_under_relaxed_model() {
    for seed in 0..3 {
        double_crash_and_recover(CrashModel::relaxed(seed + 70), seed + 30);
    }
}

#[test]
fn double_crash_recovers_under_adversarial_model() {
    for seed in 0..3 {
        double_crash_and_recover(CrashModel::adversarial(seed + 80), seed + 40);
    }
}

#[test]
fn group_commit_batches_recover_under_every_model() {
    group_commit_batch_crash(CrashModel::strict(), 1);
    for seed in 0..3 {
        group_commit_batch_crash(CrashModel::relaxed(seed + 40), seed + 2);
        group_commit_batch_crash(CrashModel::adversarial(seed + 50), seed + 5);
    }
}

#[test]
fn mid_rehash_crash_recovers_under_strict_model() {
    crash_mid_rehash_and_recover(CrashModel::strict(), 1);
}

#[test]
fn mid_rehash_crash_recovers_under_relaxed_model() {
    for seed in 0..4 {
        crash_mid_rehash_and_recover(CrashModel::relaxed(seed), seed + 10);
    }
}

#[test]
fn mid_rehash_crash_recovers_under_adversarial_model() {
    // Harsher than the issue asks: spontaneous evictions during the run
    // plus the word lottery at the crash.
    for seed in 0..2 {
        crash_mid_rehash_and_recover(CrashModel::adversarial(seed), seed + 20);
    }
}
