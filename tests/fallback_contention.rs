//! Deadlock-freedom and lost-update stress for the software fallbacks
//! under real multi-thread contention.
//!
//! Every transaction is forced through the configured fallback
//! ([`CraftyConfig::with_force_fallback`]), the write sets overlap heavily
//! (zipfian-skewed account picks over a small shared array, plus one hot
//! global counter every transaction updates), and several threads run
//! concurrently. What must hold, under both [`FallbackPolicy::Sgl`] and
//! [`FallbackPolicy::PerLine`]:
//!
//! * **Liveness** — every thread completes its bounded transaction count.
//!   The per-line policy's sorted lock acquisition cannot deadlock against
//!   other fallbacks, and its validation-failure retries always have a
//!   committed conflictor; the test finishing at all is the assertion (a
//!   deadlock or livelock hangs it).
//! * **Zero lost updates** — the hot counter equals the total transaction
//!   count exactly, and conservation of money holds over the accounts.
//! * **Durability** — the same invariants hold in the recovered image of a
//!   post-quiesce crash.

use std::sync::Arc;

use crafty_common::{PersistentTm, SplitMix64, Zipfian};
use crafty_core::{recover, Crafty, CraftyConfig, FallbackPolicy};
use crafty_pmem::{LatencyModel, MemorySpace, PmemConfig};

const ACCOUNTS: u64 = 16;
const INITIAL: u64 = 1_000;
const THREADS: usize = 4;
const TXNS_PER_THREAD: u64 = 150;

fn run_contention(policy: FallbackPolicy) {
    let mem = Arc::new(MemorySpace::new(PmemConfig {
        persistent_words: 1 << 16,
        volatile_words: 1 << 14,
        latency: LatencyModel::instant(),
        ..PmemConfig::small_for_tests()
    }));
    let engine = Arc::new(Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests()
            .with_max_threads(THREADS)
            .with_fallback(policy)
            .with_force_fallback(true),
    ));
    let base = mem.reserve_persistent(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        mem.write(base.add(i * 8), INITIAL);
        mem.clwb(0, base.add(i * 8));
    }
    let hot = mem.reserve_persistent(1);
    mem.write(hot, 0);
    mem.clwb(0, hot);
    mem.drain(0);

    crossbeam::scope(|s| {
        for tid in 0..THREADS {
            let engine = Arc::clone(&engine);
            s.spawn(move |_| {
                // Zipfian-skewed picks concentrate the write sets on a few
                // hot accounts, so overlapping lock sets are the common
                // case, not a coincidence.
                let zipf = Zipfian::new(ACCOUNTS, 0.9);
                let mut rng = SplitMix64::new(0xC0_47E4_7104 ^ tid as u64);
                let mut thread = engine.register_thread(tid);
                for _ in 0..TXNS_PER_THREAD {
                    let from = zipf.sample(&mut rng);
                    let to = zipf.sample(&mut rng);
                    let amount = rng.next_below(9) + 1;
                    thread.execute(&mut |ops| {
                        let a = base.add(from * 8);
                        let b = base.add(to * 8);
                        let va = ops.read(a)?;
                        ops.write(a, va.wrapping_sub(amount))?;
                        let vb = ops.read(b)?;
                        ops.write(b, vb.wrapping_add(amount))?;
                        let h = ops.read(hot)?;
                        ops.write(hot, h + 1)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("contention workers");
    engine.quiesce();

    let expected_txns = (THREADS as u64) * TXNS_PER_THREAD;
    assert_eq!(
        mem.read(hot),
        expected_txns,
        "[{}] lost or duplicated hot-counter updates",
        policy.label()
    );
    let total: u64 = (0..ACCOUNTS)
        .map(|i| mem.read(base.add(i * 8)))
        .fold(0u64, |s, v| s.wrapping_add(v));
    assert_eq!(
        total,
        ACCOUNTS * INITIAL,
        "[{}] conservation of money violated",
        policy.label()
    );

    // The same invariants must be durable: crash after quiesce, recover,
    // and audit the image.
    let mut image = mem.crash();
    recover(&mut image, engine.directory_addr()).expect("recovery succeeds");
    assert_eq!(
        image.read(hot),
        expected_txns,
        "[{}] recovered hot counter diverged",
        policy.label()
    );
    let recovered_total: u64 = (0..ACCOUNTS)
        .map(|i| image.read(base.add(i * 8)))
        .fold(0u64, |s, v| s.wrapping_add(v));
    assert_eq!(
        recovered_total,
        ACCOUNTS * INITIAL,
        "[{}] recovered image broke conservation",
        policy.label()
    );
}

/// The per-line fallback: overlapping sorted lock acquisitions across 4
/// threads must neither deadlock nor lose an update.
#[test]
fn per_line_fallback_contention_is_live_and_exact() {
    run_contention(FallbackPolicy::PerLine);
}

/// The SGL reference fallback under the identical load, pinning the
/// differential baseline the per-line policy is tested against.
#[test]
fn sgl_fallback_contention_is_live_and_exact() {
    run_contention(FallbackPolicy::Sgl);
}
