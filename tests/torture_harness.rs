//! Workspace-level drive of the fault-injection torture harness: the same
//! suites `figures -- torture` runs, pinned here so `cargo test` exercises
//! an exhaustive small-bank enumeration, sampled KV and crash-during-
//! recovery runs, an abort-storm run, and the harness's own
//! injected-violation self-check.

use crafty_torture::{
    injected_violation_is_caught, run_bank_torture, run_fallback_torture, run_kv_torture,
    run_recovery_torture, run_service_torture, run_storm_torture, TortureConfig,
};

/// Exhaustive enumeration of a small bank run: every persistence step of
/// the workload is a crash point, and every crash image must recover to a
/// prefix of the committed-transaction order with clean, idempotent logs.
#[test]
fn bank_exhaustive_enumeration_is_violation_free() {
    let report = run_bank_torture(&TortureConfig::quick(21));
    assert!(report.ok(), "violations: {:?}", report.failures);
    assert_eq!(
        report.crash_points_tested,
        report.total_steps - report.setup_steps,
        "exhaustive mode must audit every post-setup step"
    );
    assert!(report.crash_points_tested > 100, "run too small to matter");
}

/// Exhaustive enumeration of the forced per-line-fallback bank run: the
/// fallback's lock-word transitions tick the fault clock, so the
/// enumerated steps include crash points strictly inside lock-hold
/// windows. Every crash image must recover to a commit-order prefix AND
/// boot into a second life that keeps running with conservation intact —
/// a rebooted heap must never see a stuck lock.
#[test]
fn fallback_exhaustive_enumeration_is_violation_free() {
    let report = run_fallback_torture(&TortureConfig::quick(27));
    assert!(report.ok(), "violations: {:?}", report.failures);
    assert_eq!(
        report.crash_points_tested,
        report.total_steps - report.setup_steps,
        "exhaustive mode must audit every post-setup step"
    );
    assert!(report.crash_points_tested > 100, "run too small to matter");
}

/// Stratified sampling of the KV suite: structural integrity, exact
/// committed pairs, and prefix consistency at every sampled crash point.
#[test]
fn kv_sampled_crash_points_are_violation_free() {
    let cfg = TortureConfig {
        max_crash_points: 48,
        ..TortureConfig::quick(22)
    };
    let report = run_kv_torture(&cfg);
    assert!(report.ok(), "violations: {:?}", report.failures);
    assert!(report.crash_points_tested > 0);
}

/// Crash-during-recovery: recovery interrupted at every write budget must
/// converge to the uninterrupted recovery image when re-run.
#[test]
fn interrupted_recovery_converges_at_sampled_crash_points() {
    let report = run_recovery_torture(&TortureConfig::quick(23));
    assert!(report.ok(), "violations: {:?}", report.failures);
    assert!(report.crash_points_tested > 0);
}

/// Abort storms: sustained doomed-transaction bursts must force the SGL
/// fallback without losing liveness or durability.
#[test]
fn abort_storms_keep_the_engine_live_and_durable() {
    let report = run_storm_torture(&TortureConfig::quick(24));
    assert!(report.ok(), "violations: {:?}", report.failures);
}

/// The networked service suite, sampled: resilient sequenced clients
/// drive non-idempotent increments through fault-injected connections
/// while the fault clock kills and restarts the server; every sampled
/// crash point must stay exactly-once (final counters equal the sum of
/// acked increments — no loss, no double-apply).
#[test]
fn service_sampled_crash_points_stay_exactly_once() {
    let cfg = TortureConfig {
        max_crash_points: 3,
        ..TortureConfig::quick(26)
    };
    let report = run_service_torture(&cfg);
    assert!(report.ok(), "violations: {:?}", report.failures);
    assert_eq!(report.crash_points_tested, 3);
}

/// The auditor itself is exercised: silently corrupting one committed
/// account in a crash image must produce a reproducible `(seed, step)`
/// failure.
#[test]
fn harness_catches_an_injected_violation() {
    let failure = injected_violation_is_caught(&TortureConfig::quick(25))
        .expect("the auditor must flag the injected corruption");
    assert_eq!(failure.seed, 25);
    assert!(failure.step > 0);
    let shown = failure.to_string();
    assert!(
        shown.contains("seed 25") && shown.contains("step"),
        "failure display must carry the replay coordinates: {shown}"
    );
}
