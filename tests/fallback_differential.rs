//! Differential property tests: the per-line fallback is observably
//! identical to the single-global-lock reference fallback.
//!
//! The SGL fallback is simple enough to trust by inspection: one lock
//! serializes every fallback transaction and every hardware phase
//! subscribes to it. The per-line policy replaces that with write locks on
//! exactly the fallback's write set plus read-version validation — far
//! more concurrency, far more room for ordering bugs. These tests drive
//! the *same seeded workload* under [`FallbackPolicy::Sgl`] and
//! [`FallbackPolicy::PerLine`] (every transaction forced through the
//! fallback so the policies actually execute) and assert:
//!
//! * the committed final states are identical word-for-word, and
//! * crash images trapped across each policy's own run pass the identical
//!   audit — recovery succeeds, logs decode clean, re-recovery is a
//!   no-op, and the recovered accounts equal a prefix of the commit
//!   order — under the strict, relaxed, and adversarial crash models.
//!
//! The two policies tick the fault clock differently (per-line adds
//! lock-transition events), so crash *steps* are sampled per policy over
//! that policy's own step range; what must agree is the audit verdict,
//! not the byte-level images. This mirrors the structure of
//! `crates/pmem/tests/masked_persistence_differential.rs`, one layer up.

use std::sync::Arc;

use crafty_common::{PAddr, PersistentTm, SplitMix64};
use crafty_core::{logs_are_clean, recover, Crafty, CraftyConfig, FallbackPolicy};
use crafty_pmem::{CrashModel, FaultPlan, LatencyModel, MemorySpace, PersistentImage, PmemConfig};
use proptest::prelude::*;

const ACCOUNTS: u64 = 16;
const INITIAL: u64 = 1_000;
const TRANSFERS_PER_TXN: usize = 4;

type Transfer = (u64, u64, u64);

fn draw_picks(seed: u64, txns: u64) -> Vec<Vec<Transfer>> {
    let mut rng = SplitMix64::new(seed ^ 0xD1FF_E2E4_71A1_5EED);
    (0..txns)
        .map(|_| {
            (0..TRANSFERS_PER_TXN)
                .map(|_| {
                    (
                        rng.next_below(ACCOUNTS),
                        rng.next_below(ACCOUNTS),
                        rng.next_below(9) + 1,
                    )
                })
                .collect()
        })
        .collect()
}

/// Result of one forced-fallback run: the final (or trapped) state plus
/// everything the auditor needs.
struct PolicyRun {
    setup_steps: u64,
    total_steps: u64,
    base: PAddr,
    dir_addr: PAddr,
    final_accounts: Vec<u64>,
    image: Option<PersistentImage>,
}

/// Runs the seeded bank workload with every transaction forced through
/// `policy`'s fallback, under `plan`.
fn run_policy(picks: &[Vec<Transfer>], policy: FallbackPolicy, plan: FaultPlan) -> PolicyRun {
    let mem = Arc::new(MemorySpace::new(
        PmemConfig {
            persistent_words: 1 << 15,
            volatile_words: 1 << 13,
            max_threads: 3,
            latency: LatencyModel::instant(),
            crash: CrashModel::strict(),
            ..PmemConfig::small_for_tests()
        }
        .with_fault_plan(plan),
    ));
    let engine = Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests()
            .with_max_threads(1)
            .with_undo_log_entries(64)
            .with_fallback(policy)
            .with_force_fallback(true),
    );
    let dir_addr = engine.directory_addr();
    let base = mem.reserve_persistent(ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        mem.write(base.add(i * 8), INITIAL);
        mem.clwb(0, base.add(i * 8));
    }
    mem.drain(0);
    let mut thread = engine.register_thread(0);
    let setup_steps = mem.fault_steps();
    for txn in picks {
        thread.execute(&mut |ops| {
            for &(from, to, amount) in txn {
                let a = base.add(from * 8);
                let b = base.add(to * 8);
                let va = ops.read(a)?;
                ops.write(a, va.wrapping_sub(amount))?;
                let vb = ops.read(b)?;
                ops.write(b, vb.wrapping_add(amount))?;
            }
            Ok(())
        });
    }
    drop(thread);
    engine.quiesce();
    PolicyRun {
        setup_steps,
        total_steps: mem.fault_steps(),
        base,
        dir_addr,
        final_accounts: (0..ACCOUNTS).map(|i| mem.read(base.add(i * 8))).collect(),
        image: mem.take_fault_image(),
    }
}

/// The audit every trapped crash image must pass, identically for both
/// policies: recovery, clean logs, idempotent re-recovery, and prefix
/// consistency against the shadow oracle.
fn audit(
    mut image: PersistentImage,
    run: &PolicyRun,
    picks: &[Vec<Transfer>],
) -> Result<u64, String> {
    recover(&mut image, run.dir_addr).map_err(|e| format!("recovery failed: {e}"))?;
    if !logs_are_clean(&image, run.dir_addr) {
        return Err("logs are not clean after recovery".to_string());
    }
    let once = image.clone();
    let second = recover(&mut image, run.dir_addr).map_err(|e| format!("re-recovery: {e}"))?;
    if second.sequences_found != 0 || second.entries_rolled_back != 0 || image != once {
        return Err("second recovery is not a no-op".to_string());
    }
    let recovered: Vec<u64> = (0..ACCOUNTS)
        .map(|i| image.read(run.base.add(i * 8)))
        .collect();
    let mut shadow = vec![INITIAL; ACCOUNTS as usize];
    for k in 0..=picks.len() {
        if k > 0 {
            for &(from, to, amount) in &picks[k - 1] {
                shadow[from as usize] = shadow[from as usize].wrapping_sub(amount);
                shadow[to as usize] = shadow[to as usize].wrapping_add(amount);
            }
        }
        if recovered == shadow {
            return Ok(k as u64);
        }
    }
    Err("recovered accounts match no prefix of the commit order".to_string())
}

/// Samples `n` crash steps evenly over `(setup, total]`, seeded.
fn sample_steps(seed: u64, setup: u64, total: u64, n: u64) -> Vec<u64> {
    let span = total - setup;
    assert!(span > n, "run too short to sample");
    let mut rng = SplitMix64::new(seed ^ 0x5A4D_73E9_0000_0001);
    (0..n)
        .map(|i| {
            let lo = setup + 1 + i * span / n;
            let hi = setup + (i + 1) * span / n;
            lo + rng.next_below(hi - lo + 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fault-free completion: both policies commit the same seeded
    /// workload to the identical final state, with money conserved.
    #[test]
    fn final_state_is_policy_independent(seed: u64, txns in 2u64..12) {
        let picks = draw_picks(seed, txns);
        let sgl = run_policy(&picks, FallbackPolicy::Sgl, FaultPlan::inactive());
        let per_line = run_policy(&picks, FallbackPolicy::PerLine, FaultPlan::inactive());
        prop_assert_eq!(
            &sgl.final_accounts, &per_line.final_accounts,
            "policies committed different final states"
        );
        let total: u64 = per_line
            .final_accounts
            .iter()
            .fold(0u64, |s, &v| s.wrapping_add(v));
        prop_assert_eq!(total, ACCOUNTS * INITIAL, "conservation violated");
    }
}

/// Crash-image audits: for each policy, trap images at seeded steps of
/// that policy's own run under every crash model, and demand the audit
/// verdict be identical — a clean pass everywhere. A policy-specific
/// durability-ordering bug (undo log not persisted before publication,
/// say) would fail its side only.
#[test]
fn crash_audits_agree_across_models_and_policies() {
    for seed in [41u64, 42, 43] {
        let picks = draw_picks(seed, 8);
        for policy in [FallbackPolicy::Sgl, FallbackPolicy::PerLine] {
            let count = run_policy(&picks, policy, FaultPlan::count_only());
            let steps = sample_steps(seed, count.setup_steps, count.total_steps, 4);
            for step in steps {
                for (label, model) in [
                    ("strict", CrashModel::strict()),
                    ("relaxed", CrashModel::relaxed(seed ^ step)),
                    ("adversarial", CrashModel::adversarial(seed ^ step)),
                ] {
                    let mut run = run_policy(&picks, policy, FaultPlan::crash_at(step, model));
                    let image = run.image.take().unwrap_or_else(|| {
                        panic!(
                            "{} policy trapped no image at step {step} ({label})",
                            policy.label()
                        )
                    });
                    if let Err(detail) = audit(image, &run, &picks) {
                        panic!(
                            "{} policy failed the {label} audit at step {step} \
                             (seed {seed}): {detail}",
                            policy.label()
                        );
                    }
                }
            }
        }
    }
}

/// The two policies genuinely execute different code: per-line runs tick
/// extra fault-clock events (lock transitions), so its step count must
/// strictly exceed the SGL's on the same workload. Guards against the
/// differential silently comparing one policy with itself.
#[test]
fn per_line_runs_tick_lock_transition_events() {
    let picks = draw_picks(7, 6);
    let sgl = run_policy(&picks, FallbackPolicy::Sgl, FaultPlan::count_only());
    let per_line = run_policy(&picks, FallbackPolicy::PerLine, FaultPlan::count_only());
    assert_eq!(sgl.final_accounts, per_line.final_accounts);
    assert!(
        per_line.total_steps - per_line.setup_steps > sgl.total_steps - sgl.setup_steps,
        "per-line ({}) should tick more steps than sgl ({}) on the same workload",
        per_line.total_steps - per_line.setup_steps,
        sgl.total_steps - sgl.setup_steps,
    );
}
