//! Cross-crate integration: run every engine configuration on every
//! workload family and check the invariants that hold regardless of engine
//! (transaction counts, workload invariants, durability after quiesce for
//! the durable engines).

use std::sync::Arc;

use crafty_common::CompletionPath;
use crafty_repro::prelude::*;
use crafty_repro::workloads::{
    run_mix, BankWorkload, BtreeVariant, BtreeWorkload, Contention, StampKernel, StampWorkload,
};

fn small_space(threads: usize) -> Arc<MemorySpace> {
    Arc::new(MemorySpace::new(PmemConfig {
        persistent_words: 1 << 19,
        volatile_words: 1 << 15,
        max_threads: threads + 2,
        latency: LatencyModel::instant(),
        crash: CrashModel::strict(),
        ..PmemConfig::small_for_tests()
    }))
}

#[test]
fn every_engine_completes_the_bank_workload_and_preserves_the_total() {
    let threads = 3;
    let txns = 120;
    for kind in EngineKind::ALL {
        let mem = small_space(threads);
        let engine = build_engine(kind, &mem, threads);
        let workload = BankWorkload {
            contention: Contention::High,
            transfers_per_txn: 5,
            initial_balance: 100,
            max_threads: threads,
        };
        let mix = Workload::prepare(&workload, &mem);
        run_mix(engine.as_ref(), mix.as_ref(), threads, txns, 3);
        mix.verify(&mem)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        let b = engine.breakdown();
        assert_eq!(
            b.total_persistent(),
            threads as u64 * txns,
            "{}: every transaction completes exactly once",
            kind.label()
        );
        // Table 1 is collected from the durable engines, which log every
        // persistent write; the Non-durable baseline does not track them.
        if kind != EngineKind::NonDurable {
            assert!(
                (b.writes_per_txn() - 10.0).abs() < 0.5,
                "{}: bank runs 10 writes per transaction, measured {:.2}",
                kind.label(),
                b.writes_per_txn()
            );
        }
    }
}

#[test]
fn every_engine_completes_the_btree_and_ssca2_workloads() {
    let threads = 2;
    for kind in EngineKind::ALL {
        for workload in [
            Box::new(BtreeWorkload {
                variant: BtreeVariant::Mixed,
                key_space: 1 << 12,
                prefill: 0,
            }) as Box<dyn Workload>,
            Box::new(StampWorkload::new(StampKernel::Ssca2)),
        ] {
            let mem = small_space(threads);
            let engine = build_engine(kind, &mem, threads);
            let mix = workload.prepare(&mem);
            run_mix(engine.as_ref(), mix.as_ref(), threads, 100, 17);
            assert_eq!(
                engine.breakdown().total_persistent(),
                200,
                "{} on {}",
                kind.label(),
                workload.name()
            );
        }
    }
}

#[test]
fn durable_engines_survive_a_crash_after_quiesce() {
    let threads = 2;
    for kind in [EngineKind::Crafty, EngineKind::NvHtm, EngineKind::DudeTm] {
        let mem = small_space(threads);
        let engine = build_engine(kind, &mem, threads);
        let cell = mem.reserve_persistent(1);
        let mut t = engine.register_thread(0);
        for _ in 0..25 {
            t.execute(&mut |ops| {
                let v = ops.read(cell)?;
                ops.write(cell, v + 1)?;
                Ok(())
            });
        }
        drop(t);
        engine.quiesce();
        assert!(engine.is_durable(), "{}", kind.label());
        let image = mem.crash();
        assert_eq!(
            image.read(cell),
            25,
            "{}: quiesced state must survive a crash",
            kind.label()
        );
    }
}

#[test]
fn crafty_breakdown_distinguishes_commit_paths_under_contention() {
    let threads = 4;
    let mem = small_space(threads);
    let engine = build_engine(EngineKind::Crafty, &mem, threads);
    let workload = BankWorkload {
        contention: Contention::High,
        transfers_per_txn: 2,
        initial_balance: 100,
        max_threads: threads,
    };
    let mix = Workload::prepare(&workload, &mem);
    run_mix(engine.as_ref(), mix.as_ref(), threads, 250, 23);
    let b = engine.breakdown();
    assert!(
        b.completions(CompletionPath::Redo) > 0,
        "redo path must be exercised"
    );
    let non_redo = b.completions(CompletionPath::Validate) + b.completions(CompletionPath::Sgl);
    assert!(
        b.completions(CompletionPath::Redo) + non_redo == 1000,
        "all updating transactions commit through exactly one path"
    );
    // A transaction only leaves the Redo path after a failed check, which
    // aborts a hardware transaction — so non-Redo completions imply aborts.
    // The converse is scheduling-dependent: on a single core the threads
    // can serialize so perfectly that no conflict ever materializes, so
    // zero aborts with 100% Redo completions is a legitimate outcome.
    assert!(
        non_redo == 0 || b.total_hw_aborts() > 0,
        "non-Redo completions require hardware aborts"
    );
}

#[test]
fn crafty_thread_unsafe_mode_composes_with_program_locks() {
    let threads = 3;
    let mem = small_space(threads);
    let crafty = Crafty::new(
        Arc::clone(&mem),
        CraftyConfig::small_for_tests()
            .with_mode(ThreadingMode::ThreadUnsafe)
            .with_max_threads(threads),
    );
    let cell = mem.reserve_persistent(1);
    let lock = std::sync::Mutex::new(());
    crossbeam::scope(|s| {
        for tid in 0..threads {
            let crafty = &crafty;
            let lock = &lock;
            s.spawn(move |_| {
                let mut t = crafty.register_thread(tid);
                for _ in 0..100 {
                    let _guard = lock.lock().unwrap();
                    t.execute(&mut |ops| {
                        let v = ops.read(cell)?;
                        ops.write(cell, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("threads");
    assert_eq!(mem.read(cell), 300);
}
