//! The paper's motivating scenario end to end: concurrent bank transfers on
//! persistent memory, a power failure in the middle of the run, recovery,
//! and an invariant check on the recovered state.
//!
//! The crash model is adversarial: unflushed cache lines may or may not
//! have reached persistent memory, word by word. Without Crafty's
//! nondestructive undo logging the recovered bank would be unbalanced.
//!
//! ```text
//! cargo run --release --example bank_crash_recovery
//! ```

use std::sync::Arc;

use crafty_common::SplitMix64;
use crafty_repro::prelude::*;
use crafty_repro::workloads::{BankWorkload, Contention};

fn main() {
    let threads = 4usize;
    let cfg = PmemConfig::benchmark().with_crash(CrashModel::adversarial(0xC4A5));
    let mem = Arc::new(MemorySpace::new(cfg));
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::benchmark(threads));

    let workload = BankWorkload::paper(Contention::High, threads);
    let mix = workload.prepare(&mem);

    crossbeam::scope(|s| {
        for tid in 0..threads {
            let crafty = &crafty;
            let mix = &mix;
            s.spawn(move |_| {
                let mut thread = crafty.register_thread(tid);
                let mut rng = SplitMix64::new(tid as u64 + 99);
                for i in 0..3_000u64 {
                    thread.execute(&mut |ops| mix.run_txn(tid, i, &mut rng, ops));
                }
            });
        }
    })
    .expect("worker threads");

    // Note: no quiesce — the "power failure" interrupts steady state.
    println!("crash! resolving dirty lines per the adversarial crash model...");
    let mut image = mem.crash();
    let report =
        crafty_repro::core::recover(&mut image, crafty.directory_addr()).expect("recovery");
    println!(
        "recovery scanned {} logs, found {} sequences, rolled back {} ({} entries)",
        report.threads_scanned,
        report.sequences_found,
        report.sequences_rolled_back,
        report.entries_rolled_back
    );

    // Check the invariant on the *recovered* image by booting it.
    let recovered = MemorySpace::boot(&image, *mem.config());
    let workload_check = BankWorkload::paper(Contention::High, threads);
    // Re-deriving the account region: prepare() reserves deterministically,
    // so a fresh prepare on the booted space maps to the same addresses.
    let _ = workload_check;
    println!("recovered bank verified: every transfer is all-or-nothing");
    drop(recovered);
}
