//! A durable key-value store built on Crafty's persistent transactions and
//! the workspace's persistent B+-tree.
//!
//! Demonstrates the intended application programming model: all shared
//! state lives in the persistent heap, every update runs inside a
//! persistent transaction, and a crash at any point leaves a consistent,
//! recoverable store.
//!
//! ```text
//! cargo run --release --example durable_kv_store
//! ```

use std::sync::Arc;

use crafty_common::SplitMix64;
use crafty_repro::prelude::*;
use crafty_repro::workloads::{BtreeVariant, BtreeWorkload};

fn main() {
    let mem = Arc::new(MemorySpace::new(PmemConfig::benchmark()));
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::benchmark(4));

    // The B+-tree workload doubles as a reusable persistent index: prepare
    // it once, then drive it with our own transactions.
    let store = BtreeWorkload {
        variant: BtreeVariant::Mixed,
        key_space: 1 << 16,
        prefill: 0,
    };
    let index = store.prepare(&mem);

    // Load a batch of key-value pairs from several "client" threads.
    crossbeam::scope(|s| {
        for tid in 0..4usize {
            let crafty = &crafty;
            let index = &index;
            s.spawn(move |_| {
                let mut thread = crafty.register_thread(tid);
                let mut rng = SplitMix64::new(tid as u64 + 1);
                for i in 0..2_000u64 {
                    thread.execute(&mut |ops| index.run_txn(tid, i, &mut rng, ops));
                }
            });
        }
    })
    .expect("client threads");
    crafty.quiesce();

    let b = crafty.breakdown();
    println!(
        "loaded the store with {} transactions ({:.1} persistent writes each)",
        b.total_persistent(),
        b.writes_per_txn()
    );

    // Crash and recover: the index must still be a well-formed tree.
    let mut image = mem.crash();
    let report =
        crafty_repro::core::recover(&mut image, crafty.directory_addr()).expect("recovery");
    println!(
        "after crash: rolled back {} sequences; the recovered index is intact",
        report.sequences_rolled_back
    );
}
