//! A durable key-value service end to end on `crafty-kv`: concurrent
//! clients load a sharded, persistently resizable store through Crafty
//! transactions, the power fails mid-flight under an adversarial
//! persistence model, recovery rolls back incomplete work, and the store
//! reopens on the rebooted memory with every committed pair intact — then
//! keeps serving.
//!
//! ```text
//! cargo run --release --example durable_kv_store
//! ```

use std::sync::Arc;

use crafty_repro::prelude::*;

fn main() {
    let pmem_cfg = PmemConfig::benchmark().with_crash(CrashModel::adversarial(0x5EED));
    // Five thread slots: four loader clients plus one for the unquiesced
    // pre-crash traffic (each tid registers at most once per run).
    let crafty_cfg = CraftyConfig::benchmark(5);
    // Sized for the ~20k keys the clients load: initial tables start at
    // half the need, so the load phase drives every shard through at least
    // one full incremental rehash.
    let kv_cfg = KvConfig::benchmark(20_000, 16);

    let mem = Arc::new(MemorySpace::new(pmem_cfg));
    let crafty = Crafty::new(Arc::clone(&mem), crafty_cfg);
    let kv = ShardedKv::create(&mem, &kv_cfg);

    // Four "client" threads insert disjoint key ranges; the store grows
    // through incremental, crash-consistent rehashes while they run.
    let per_client = 5_000u64;
    crossbeam::scope(|s| {
        for tid in 0..4usize {
            let crafty = &crafty;
            let kv = &kv;
            s.spawn(move |_| {
                let mut thread = crafty.register_thread(tid);
                for i in 0..per_client {
                    let key = (tid as u64) << 32 | i;
                    thread.execute(&mut |ops| kv.put(ops, key, key ^ 0xABCD).map(|_| ()));
                }
            });
        }
    })
    .expect("client threads");
    crafty.quiesce();

    let stats = kv.stats(&mem);
    let b = crafty.breakdown();
    println!(
        "loaded {} keys across {} shards ({} words of table arena used, \
         {} transactions, {:.1} persistent writes each)",
        stats.len,
        kv.shard_count(),
        stats.arena_used,
        b.total_persistent(),
        b.writes_per_txn()
    );

    // A little more unquiesced traffic, then the power fails.
    {
        let mut thread = crafty.register_thread(4);
        for i in 0..500u64 {
            let key = (9u64 << 32) | i;
            thread.execute(&mut |ops| kv.put(ops, key, key).map(|_| ()));
        }
    }
    println!("crash! resolving dirty lines per the adversarial crash model...");
    let mut image = mem.crash();
    let report =
        crafty_repro::core::recover(&mut image, crafty.directory_addr()).expect("recovery");
    println!(
        "recovery scanned {} logs, rolled back {} sequences ({} entries)",
        report.threads_scanned, report.sequences_rolled_back, report.entries_rolled_back
    );

    // Reboot: replay the constructors, reattach to the store, verify.
    let rebooted = Arc::new(MemorySpace::boot(&image, pmem_cfg));
    let crafty2 = Crafty::new(Arc::clone(&rebooted), crafty_cfg);
    let kv2 = ShardedKv::open(&rebooted, &kv_cfg);
    kv2.check_integrity(&rebooted)
        .unwrap_or_else(|e| panic!("recovered store is inconsistent: {e}"));
    for tid in 0..4u64 {
        for i in 0..per_client {
            let key = tid << 32 | i;
            assert_eq!(
                kv2.get_direct(&rebooted, key),
                Some(key ^ 0xABCD),
                "committed key {key} lost"
            );
        }
    }
    println!(
        "recovered store verified: {} keys intact, integrity clean",
        kv2.stats(&rebooted).len
    );

    // And it still serves: read-modify-write traffic on the rebooted store.
    let mut thread = crafty2.register_thread(0);
    let mut observed = None;
    thread.execute(&mut |ops| {
        let key = 7u64;
        let old = kv2.put(ops, key, 777)?;
        observed = Some((old, kv2.get(ops, key)?));
        Ok(())
    });
    crafty2.quiesce();
    println!("post-recovery transaction committed: {observed:?}");
}
