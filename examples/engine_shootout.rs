//! A miniature version of the paper's Figure 6: run the bank benchmark on
//! every engine (Non-durable, DudeTM, NV-HTM, Crafty and its two ablation
//! variants) and print the normalized-throughput table.
//!
//! ```text
//! cargo run --release --example engine_shootout [threads...]
//! ```

use std::sync::Arc;

use crafty_repro::prelude::*;
use crafty_repro::stats::{render_figure, Figure};
use crafty_repro::workloads::{BankWorkload, Contention};

fn main() {
    let thread_counts: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1, 2, 4]
        } else {
            args
        }
    };
    let txns_per_thread = 2_000u64;
    let workload = BankWorkload::paper(Contention::Medium, *thread_counts.iter().max().unwrap());

    let mut figure = Figure::new(workload.contention.label().to_string());
    for kind in EngineKind::ALL {
        for &threads in &thread_counts {
            let mem = Arc::new(MemorySpace::new(PmemConfig::benchmark()));
            let engine = build_engine(kind, &mem, threads);
            let mix = crafty_repro::workloads::Workload::prepare(&workload, &mem);
            let m = measure(engine.as_ref(), mix.as_ref(), threads, txns_per_thread, 7);
            println!(
                "{:<18} {:>2} threads: {:>10.0} txn/s",
                kind.label(),
                threads,
                m.throughput()
            );
            figure.push(m);
        }
    }

    println!();
    println!("{}", render_figure(&figure, "Non-durable"));
    println!("(values normalized to single-thread Non-durable, as in the paper)");
}
