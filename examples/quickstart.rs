//! Quickstart: run durable transactions with Crafty, crash, and recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use crafty_repro::prelude::*;

fn main() {
    // 1. A simulated persistent heap (DRAM-emulated NVM, 300 ns drains) and
    //    a Crafty engine providing full ACID persistent transactions.
    let mem = Arc::new(MemorySpace::new(PmemConfig::benchmark()));
    let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::benchmark(4));

    // 2. Persistent application state: a counter and a small array.
    let counter = mem.reserve_persistent(1);
    let history = mem.reserve_persistent(16);

    // 3. Run persistent transactions from a few threads.
    crossbeam::scope(|s| {
        for tid in 0..4 {
            let crafty = &crafty;
            s.spawn(move |_| {
                let mut thread = crafty.register_thread(tid);
                for _ in 0..1_000 {
                    thread.execute(&mut |ops| {
                        let v = ops.read(counter)?;
                        ops.write(counter, v + 1)?;
                        ops.write(history.add(v % 16), v)?;
                        Ok(())
                    });
                }
            });
        }
    })
    .expect("worker threads");

    println!(
        "counter after 4 threads x 1000 transactions: {}",
        mem.read(counter)
    );
    let breakdown = crafty.breakdown();
    println!(
        "commit paths — redo: {}, validate: {}, sgl: {}, read-only: {}",
        breakdown.completions(CompletionPath::Redo),
        breakdown.completions(CompletionPath::Validate),
        breakdown.completions(CompletionPath::Sgl),
        breakdown.completions(CompletionPath::ReadOnly),
    );

    // 4. Crash (dirty state resolves per the crash model), then run the
    //    recovery observer and inspect the recovered state.
    let mut image = mem.crash();
    let report = crafty_repro::core::recover(&mut image, crafty.directory_addr())
        .expect("recovery over a Crafty heap");
    println!(
        "recovery rolled back {} sequences ({} undo entries); recovered counter = {}",
        report.sequences_rolled_back,
        report.entries_rolled_back,
        image.read(counter)
    );
    assert!(image.read(counter) <= 4_000);
}
