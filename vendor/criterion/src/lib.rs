//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! implements just enough of criterion's API for the workspace's bench
//! targets to compile and produce useful wall-clock numbers: benchmark
//! groups, `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistical analysis — each
//! benchmark reports the mean time per iteration over a fixed measurement
//! window.
//!
//! When invoked with `--test` (as `cargo test --benches` does) each
//! benchmark body runs exactly once, with no warm-up or measurement loop.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the displayed id.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs the timed routine.
pub struct Bencher<'a> {
    mode: &'a Mode,
    /// Filled in by [`Bencher::iter`]: (total elapsed, iterations).
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, running it repeatedly for the configured
    /// measurement window (or exactly once in test mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                routine();
                self.result = Some((Duration::ZERO, 1));
            }
            Mode::Bench {
                warm_up_time,
                measurement_time,
            } => {
                let warm_end = Instant::now() + *warm_up_time;
                while Instant::now() < warm_end {
                    routine();
                }
                let mut iters = 0u64;
                let start = Instant::now();
                let measure_end = start + *measurement_time;
                loop {
                    routine();
                    iters += 1;
                    if Instant::now() >= measure_end {
                        break;
                    }
                }
                self.result = Some((start.elapsed(), iters));
            }
        }
    }
}

enum Mode {
    /// `--test`: run each routine once, no timing.
    Test,
    /// Normal bench run with the group's warm-up and measurement windows.
    Bench {
        warm_up_time: Duration,
        measurement_time: Duration,
    },
}

/// The top-level harness handle; mirrors `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing warm-up/measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full) {
            return self;
        }
        let mode = if self.criterion.test_mode {
            Mode::Test
        } else {
            Mode::Bench {
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
            }
        };
        let mut bencher = Bencher {
            mode: &mode,
            result: None,
        };
        f(&mut bencher);
        report(&full, bencher.result);
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn report(id: &str, result: Option<(Duration, u64)>) {
    match result {
        Some((elapsed, iters)) if iters > 0 && !elapsed.is_zero() => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench: {id:<60} {ns:>14.0} ns/iter ({iters} iters)");
        }
        Some((_, iters)) => {
            println!("bench: {id:<60} ok ({iters} iters, untimed)");
        }
        None => println!("bench: {id:<60} skipped (no iter call)"),
    }
}

/// Prevents the compiler from optimizing away a value; mirrors
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions; mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`; mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_routine_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1, "test mode runs the routine exactly once");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".to_string()),
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
