//! Offline minimal stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements just enough of proptest's API for the workspace's
//! property-based tests: the `proptest!` macro (with `#![proptest_config]`
//! and both `name in strategy` and `name: Type` argument forms), numeric
//! range strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each case is generated from a deterministic SplitMix64 stream
//! keyed by the case index, so failures reproduce exactly across runs.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Something that can generate values of type `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + unit * (self.end - self.start)
        }
    }

    /// The `name: Type` argument form of `proptest!` draws from the whole
    /// domain of the type.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a property case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property does not hold for the generated input.
        Fail(String),
        /// The input should be discarded (unused by this workspace).
        Reject(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (discarded) case with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator used for case number `case` of a property. The
        /// stream depends only on the case index, so failures reproduce.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Mirror of the `prop` alias exposed by proptest's prelude
/// (`prop::collection::vec(..)`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Everything a property test needs, importable with a single glob.
    pub use crate::prop;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property-based tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($args:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        // The captured metas include the `#[test]` attribute conventionally
        // written inside `proptest!` blocks, so none is added here.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case);
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__proptest_case!(__proptest_rng; ( $($args)* ) $body);
                match result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!("property failed at case {case}: {e}"),
                }
            }
        }
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; () $body:block) => {
        (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            Ok(())
        })()
    };
    ($rng:ident; ($pname:ident in $strategy:expr) $body:block) => {{
        let $pname = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_case!($rng; () $body)
    }};
    ($rng:ident; ($pname:ident in $strategy:expr, $($rest:tt)*) $body:block) => {{
        let $pname = $crate::strategy::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_case!($rng; ($($rest)*) $body)
    }};
    ($rng:ident; ($pname:ident : $ty:ty) $body:block) => {{
        let $pname = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_case!($rng; () $body)
    }};
    ($rng:ident; ($pname:ident : $ty:ty, $($rest:tt)*) $body:block) => {{
        let $pname = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_case!($rng; ($($rest)*) $body)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..10, b in 0usize..4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn arbitrary_and_vec_forms_work(x: u64, v in prop::collection::vec(0u64..5, 1..6)) {
            let _ = x;
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
