//! Bounded lock-free queues; mirrors `crossbeam::queue::ArrayQueue`.
//!
//! The implementation is the classic Vyukov bounded MPMC queue with
//! crossbeam's lap-based stamps: `head` and `tail` pack a slot index in
//! their low bits and a lap number above it (`one_lap` is a power of two
//! strictly greater than the capacity, so a slot's push-ready stamp can
//! never collide with its pop-ready stamp — the subtlety that breaks the
//! naive `pos + 1` scheme at capacity 1). Producers and consumers claim
//! slots by CAS on the counters and then transfer the value through the
//! slot they exclusively own; neither operation takes a lock.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Stamp. `stamp == tail` means the slot is free for the push whose
    /// packed counter is `tail`; `stamp == tail + 1` means it holds that
    /// push's value and is ready for the matching pop; the pop then sets
    /// `stamp = head + one_lap`, the push-ready stamp of the next lap.
    stamp: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer multi-consumer lock-free queue (API-compatible
/// subset of `crossbeam::queue::ArrayQueue`).
pub struct ArrayQueue<T> {
    slots: Box<[Slot<T>]>,
    /// Power of two > capacity; laps advance counters by this much.
    one_lap: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: values are transferred between threads through slots whose
// exclusive ownership is established by the stamp protocol below, so the
// queue is as thread-safe as a channel of `T`.
unsafe impl<T: Send> Sync for ArrayQueue<T> {}
unsafe impl<T: Send> Send for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        ArrayQueue {
            slots: (0..capacity)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            one_lap: (capacity + 1).next_power_of_two(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Maximum number of elements the queue can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn index(&self, counter: usize) -> usize {
        counter & (self.one_lap - 1)
    }

    #[inline]
    fn lap(&self, counter: usize) -> usize {
        counter & !(self.one_lap - 1)
    }

    /// The packed counter one position after `counter`.
    #[inline]
    fn advance(&self, counter: usize) -> usize {
        if self.index(counter) + 1 < self.slots.len() {
            counter + 1
        } else {
            // Wrap to index 0 of the next lap.
            self.lap(counter).wrapping_add(self.one_lap)
        }
    }

    /// Whether the queue currently holds no elements.
    pub fn is_empty(&self) -> bool {
        // An empty queue has head == tail (checked in this order: if head
        // catches up to a tail read earlier, no element was in between).
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        tail == head
    }

    /// Number of elements currently in the queue (racy under concurrency,
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        loop {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            // Consistent snapshot: tail unchanged across the head read.
            if self.tail.load(Ordering::SeqCst) == tail {
                let hix = self.index(head);
                let tix = self.index(tail);
                return if hix < tix {
                    tix - hix
                } else if hix > tix {
                    self.slots.len() - hix + tix
                } else if tail == head {
                    0
                } else {
                    self.slots.len()
                };
            }
        }
    }

    /// Attempts to enqueue `value`; returns it back if the queue is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[self.index(tail)];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == tail {
                let next = self.advance(tail);
                match self.tail.compare_exchange_weak(
                    tail,
                    next,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of this position; no other push can claim it and
                        // no pop touches the slot until the stamp advances.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.stamp.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if stamp.wrapping_add(self.one_lap) == tail + 1 {
                // The slot still holds the value pushed one lap ago: the
                // queue is full — unless a pop freed it in the meantime.
                std::sync::atomic::fence(Ordering::SeqCst);
                let head = self.head.load(Ordering::Relaxed);
                if head.wrapping_add(self.one_lap) == tail {
                    return Err(value);
                }
                tail = self.tail.load(Ordering::Relaxed);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; returns `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[self.index(head)];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == head + 1 {
                let next = self.advance(head);
                match self.head.compare_exchange_weak(
                    head,
                    next,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique owner
                        // of this position, whose slot was filled by the
                        // push that set `stamp = head + 1`.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.stamp
                            .store(head.wrapping_add(self.one_lap), Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => head = current,
                }
            } else if stamp == head {
                // The slot is awaiting the push at this very position: the
                // queue is empty — unless a push landed in the meantime.
                std::sync::atomic::fence(Ordering::SeqCst);
                let tail = self.tail.load(Ordering::Relaxed);
                if tail == head {
                    return None;
                }
                head = self.head.load(Ordering::Relaxed);
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Enqueues `value`, evicting and returning the oldest element if the
    /// queue is full (mirrors `ArrayQueue::force_push`).
    pub fn force_push(&self, value: T) -> Option<T> {
        let mut value = value;
        let mut evicted = None;
        loop {
            match self.push(value) {
                Ok(()) => return evicted,
                Err(v) => {
                    value = v;
                    if let Some(old) = self.pop() {
                        // Keep only the first eviction: with further races
                        // the queue may evict more, and the caller cares
                        // about "a displaced element", not all of them.
                        evicted.get_or_insert(old);
                    }
                }
            }
        }
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn push_pop_round_trip() {
        let q = ArrayQueue::new(2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3), "queue of capacity 2 is full");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn force_push_evicts_oldest() {
        let q = ArrayQueue::new(1);
        assert_eq!(q.force_push(10), None);
        assert_eq!(q.force_push(20), Some(10));
        assert_eq!(q.pop(), Some(20));
    }

    #[test]
    fn capacity_one_take_put_slot() {
        // The HTM descriptor pool's usage pattern: a single-slot queue used
        // as an atomic take/put cell, cycled many times (laps wrap).
        let q = ArrayQueue::new(1);
        assert_eq!(q.pop(), None);
        for round in 0..1000u64 {
            q.push(Box::new(round)).unwrap();
            assert_eq!(q.push(Box::new(round)).map_err(|b| *b), Err(round));
            let b = q.pop().expect("value present");
            assert_eq!(*b, round);
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn non_power_of_two_capacity_wraps_correctly() {
        let q = ArrayQueue::new(3);
        for round in 0..100 {
            q.push(round).unwrap();
            q.push(round + 1).unwrap();
            assert_eq!(q.pop(), Some(round));
            assert_eq!(q.pop(), Some(round + 1));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_remaining_values() {
        use std::sync::Arc;
        let token = Arc::new(());
        {
            let q = ArrayQueue::new(4);
            q.push(Arc::clone(&token)).unwrap();
            q.push(Arc::clone(&token)).unwrap();
            assert_eq!(Arc::strong_count(&token), 3);
        }
        assert_eq!(Arc::strong_count(&token), 1, "queued Arcs were dropped");
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = ArrayQueue::new(8);
        let produced = 4 * 2_000u64;
        let consumed = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        crate::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move |_| {
                    for i in 0..2_000u64 {
                        let mut v = t * 2_000 + i + 1;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let consumed = &consumed;
                let sum = &sum;
                s.spawn(move |_| loop {
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        if consumed.fetch_add(1, Ordering::Relaxed) + 1 == produced {
                            break;
                        }
                    } else if consumed.load(Ordering::Relaxed) >= produced {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        })
        .expect("queue stress");
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert_eq!(
            sum.load(Ordering::Relaxed),
            produced * (produced + 1) / 2,
            "every pushed value was popped exactly once"
        );
    }
}
