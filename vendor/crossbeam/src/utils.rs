//! Spin-wait utilities; mirrors `crossbeam::utils::Backoff`.

/// Exponential backoff for spin loops (API-compatible subset of
/// `crossbeam_utils::Backoff`).
///
/// Each call to [`Backoff::spin`] or [`Backoff::snooze`] busy-waits for an
/// exponentially growing number of [`std::hint::spin_loop`] hints, capped so
/// a long wait never turns into an unbounded pause; once the cap is reached,
/// `snooze` yields the thread instead — on a machine with fewer cores than
/// spinning threads, descheduling the waiter is what lets the thread being
/// waited on actually run.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

/// `spin` doubles the pause up to 2^6 hint iterations.
const SPIN_LIMIT: u32 = 6;
/// `snooze` keeps doubling up to 2^10, then starts yielding.
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Creates a fresh backoff state.
    pub fn new() -> Self {
        Backoff::default()
    }

    /// Resets the backoff to its initial (shortest) pause.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off with processor hints only, for waits expected to resolve
    /// quickly (e.g. a lock-holder on another core finishing a short
    /// critical section). The pause length doubles per call, capped at
    /// `2^6` hints.
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off, eventually yielding the thread: spins with doubling
    /// pauses up to `2^10` hints, then calls [`std::thread::yield_now`] on
    /// every subsequent invocation.
    pub fn snooze(&mut self) {
        if self.step <= YIELD_LIMIT {
            for _ in 0..1u32 << self.step {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// True once the backoff has reached its cap — the conventional signal
    /// to stop spinning and park/yield instead.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_saturates_and_never_completes() {
        let mut b = Backoff::new();
        for _ in 0..64 {
            b.spin();
        }
        assert!(!b.is_completed(), "spin alone must not reach the yield cap");
    }

    #[test]
    fn snooze_reaches_completion_then_yields() {
        let mut b = Backoff::new();
        let mut iterations = 0;
        while !b.is_completed() {
            b.snooze();
            iterations += 1;
            assert!(iterations < 1000, "snooze must reach the cap quickly");
        }
        // Further snoozes are yields; they must not panic or overflow.
        b.snooze();
        b.snooze();
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
