//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! `crossbeam::scope` scoped-thread API (on top of `std::thread::scope`,
//! stable since Rust 1.63), the [`queue::ArrayQueue`] bounded lock-free
//! queue, and [`utils::Backoff`].
//!
//! Differences from the real crate: if a spawned thread panics, the panic
//! is propagated when the scope unwinds (std semantics) instead of being
//! returned inside the `Err` variant — the `Result` returned here is always
//! `Ok`, so `.expect(..)` call sites behave identically in passing runs and
//! still fail loudly on a child panic.
//!
//! Like the real crossbeam, the queue implementation contains `unsafe`
//! internally (slot ownership is handed off through sequence numbers); the
//! rest of the workspace stays `#![forbid(unsafe_code)]` and uses it
//! through the safe API only.

use std::thread::ScopedJoinHandle;

pub mod queue;
pub mod utils;

/// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a scope handle (which
    /// crossbeam callers conventionally ignore with `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope for spawning threads that may borrow from the enclosing
/// stack frame; mirrors `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Mirror of the `crossbeam::thread` module path.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn spawn_returns_joinable_handle() {
        let r = super::scope(|s| s.spawn(|_| 21).join().unwrap() * 2).expect("scope");
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
