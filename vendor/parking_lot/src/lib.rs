//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `parking_lot::{Mutex, Condvar}` API surface on top of `std::sync`.
//! Semantics differ from the real crate only in that poisoning is ignored
//! (a panic while holding the lock does not poison it), which matches
//! parking_lot's own behaviour.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (API-compatible subset of
/// `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poisoned error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed — the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership (std's wait consumes the guard; parking_lot's takes
/// `&mut`).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (API-compatible subset of `parking_lot::Condvar`).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
