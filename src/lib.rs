//! Umbrella crate for the Crafty reproduction.
//!
//! Re-exports the public API of every workspace crate so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`core`] ([`crafty_core`]) — the Crafty engine itself (nondestructive
//!   undo logging, Log/Redo/Validate phases, recovery).
//! * [`pmem`] / [`htm`] — the simulated persistent memory and the simulated
//!   RTM the engines run on.
//! * [`baselines`] — Non-durable, NV-HTM, DudeTM, and the software logging
//!   engines.
//! * [`kv`] ([`crafty_kv`]) — the durable, sharded key-value store built on
//!   the persistent-transaction interface (the workspace's application
//!   layer).
//! * [`server`] ([`crafty_server`]) — the networked front-end over the KV
//!   store: a thread-per-core TCP server speaking a pipelined binary
//!   protocol, where each pipelined batch of writes shares one
//!   group-commit durability window and the ack is sent only after the
//!   batch's drain fence. Persistent client sessions dedup replayed
//!   sequence numbers, so the retrying [`prelude::SessionClient`] is
//!   **exactly-once** end to end — through timeouts, `Busy` shedding,
//!   and server crash-restart, even for non-idempotent increments.
//! * [`workloads`] / [`stats`] — the paper's benchmarks, the YCSB-style KV
//!   mixes, the open-loop arrival schedules behind the service benchmark,
//!   and the measurement and reporting layer (including the log-bucketed
//!   latency histogram behind the p50/p99/p999 columns).
//!
//! See `README.md` for the quickstart and benchmark guide, and
//! `ARCHITECTURE.md` for the crate layers, the life of a transaction, and
//! the crash-model table.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use crafty_repro::prelude::*;
//!
//! let mem = Arc::new(MemorySpace::new(PmemConfig::small_for_tests()));
//! let crafty = Crafty::new(Arc::clone(&mem), CraftyConfig::small_for_tests());
//! let cell = mem.reserve_persistent(1);
//!
//! let mut thread = crafty.register_thread(0);
//! thread.execute(&mut |ops| {
//!     let v = ops.read(cell)?;
//!     ops.write(cell, v + 1)?;
//!     Ok(())
//! });
//! assert_eq!(mem.read(cell), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use crafty_baselines as baselines;
pub use crafty_common as common;
pub use crafty_core as core;
pub use crafty_htm as htm;
pub use crafty_kv as kv;
pub use crafty_pmem as pmem;
pub use crafty_server as server;
pub use crafty_stats as stats;
pub use crafty_workloads as workloads;

/// The most commonly used types, importable with a single `use`.
pub mod prelude {
    pub use crafty_baselines::{DudeTm, NonDurable, NvHtm};
    pub use crafty_common::{
        BreakdownSnapshot, CompletionPath, PAddr, PersistentTm, TmThread, TxAbort, TxnOps, Zipfian,
    };
    pub use crafty_core::{recover, Crafty, CraftyConfig, CraftyVariant, ThreadingMode};
    pub use crafty_kv::{DirectOps, GroupCommit, KvConfig, SeqCheck, SessionTable, ShardedKv};
    pub use crafty_pmem::{CrashModel, LatencyModel, MemorySpace, PersistentImage, PmemConfig};
    pub use crafty_server::{
        ClientError, FaultConfig, FaultyStream, KvClient, KvServer, NetStream, ProtocolError,
        Request, Response, RetryPolicy, ServerConfig, ServerStats, SessionClient, WriteOp,
    };
    pub use crafty_stats::LatencyHistogram;
    pub use crafty_workloads::{
        build_engine, measure, ArrivalProcess, EngineKind, OpKind, OpenLoopConfig, ScheduledOp,
        Workload, YcsbMix, YcsbWorkload,
    };
}
